"""Measure one ablation cell: a policy configuration on a workload.

Every replicate of a cell takes the *same* configuration through three
substrates, so each flip can register on the metric family it actually
affects:

* **HTM machine** — a :class:`~repro.htm.Machine` run of the workload
  (throughput, abort rate, fallback share).  The machine seed derives
  from ``(seed, workload, rep)`` only — *not* the flip — so flips are
  compared under common random numbers (paired design).
* **Ledger arena** — a Corollary 1 :class:`ConflictLedgerArena` pass
  over an adversarial schedule built from the same ``(workload, rep)``
  stream, scoring the configuration's competitive ratio vs OPT.
* **Timed arena** — a scalar :class:`TimedArena` attempts-to-commit
  measurement under the adversary's per-attempt plan, which is where
  Corollary 2's B-growth (and the grace period itself) shows up.

All randomness flows through :mod:`repro.rngutil` streams derived from
the cell coordinates, so rows are identical wherever the cell executes
(simlint DET004) and byte-identical at any ``--jobs``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.ablation import axes
from repro.ablation.cells import WORKLOADS
from repro.adversary import ConflictLedgerArena, RandomAdversary, TimedArena
from repro.adversary.adversaries import make_transactions
from repro.core.backoff import BackoffPolicy
from repro.core.model import ConflictKind
from repro.core.policy import ImmediateAbortPolicy
from repro.core.requestor_wins import (
    DeterministicRW,
    UniformRW,
    optimal_requestor_wins,
)
from repro.distributions import ExponentialLengths
from repro.errors import InvalidParameterError
from repro.htm import Machine, MachineParams
from repro.htm.conflict_policy import (
    DetDelay,
    GreedyCM,
    NoDelay,
    RandDelay,
    RegimeAdaptiveDelay,
    RRWMeanDelay,
)
from repro.htm.profiler import CommitProfiler
from repro.obs.tracebus import NO_SIM_TIME, get_bus
from repro.rngutil import seedseq_for, stream_for

__all__ = ["run_ablation_cell", "collect_matrix", "run_ablate_rank", "flip_parts"]

#: Fraction of the profiled full transaction length an *offline*
#: estimator reports as the mean remaining time at conflict — the same
#: remaining-fraction convention as :class:`~repro.htm.profiler.CommitProfiler`.
OFFLINE_REMAINING_FRACTION = 0.5

#: Conflicts a streaming estimator has digested by the time most
#: decisions are made — the *online* µ̂ is the mean over this prefix.
ONLINE_WINDOW = 64


def flip_parts(flip: str) -> tuple[str, str]:
    """``(axis, value)`` of a flip label; the baseline maps to itself."""
    if flip == axes.BASELINE_LABEL:
        return axes.BASELINE_LABEL, axes.BASELINE_LABEL
    name, _, value = flip.partition("=")
    return name, value


def _machine_params(cfg: axes.PolicyConfig, n_cores: int) -> MachineParams:
    params = MachineParams(n_cores=n_cores)
    if cfg.b_growth == "off":
        # disable inter-retry abort-cost growth (Corollary 2's mechanism
        # in the HTM is the exponential retry backoff)
        params = params.with_updates(retry_backoff_base=0)
    if cfg.fallback == "off":
        # never escalate to the lock-based fallback path
        params = params.with_updates(max_retries=1_000_000)
    return params


def _oracle_mu(workload_factory, params, horizon, calib_seed, fallback_mu):
    """Exact-knowledge µ: profile commit durations in a calibration
    pre-run of the same workload (seeded, so still deterministic)."""
    workload = workload_factory()
    profiler = CommitProfiler()
    machine = Machine(params, lambda core_id: RandDelay())
    machine.commit_observers.append(profiler.observe_commit)
    machine.load(workload, seed=calib_seed)
    machine.run(max(horizon / 4.0, 4_000.0))
    mu = profiler.mu_estimate()
    if not math.isfinite(mu) or mu <= 0:
        return fallback_mu
    return float(mu)


def _machine_policy(cfg, workload, params, oracle_mu):
    """``(policy_factory, commit_observer | None)`` for the machine run."""
    if cfg.grace == "off":
        return (lambda core_id: NoDelay()), None
    if cfg.family == "det":
        return (lambda core_id: DetDelay()), None
    if cfg.family == "rand":
        return (lambda core_id: RandDelay()), None
    if cfg.family == "greedy":
        return (lambda core_id: GreedyCM()), None
    # the regime family: the estimator axis picks the µ source
    if cfg.estimator == "online":
        policy = RegimeAdaptiveDelay()
        return (lambda core_id: policy), policy.observe_commit
    tuned = workload.tuned_delay_cycles(params)
    offline_mu = max(1.0, OFFLINE_REMAINING_FRACTION * tuned)
    mu = oracle_mu if cfg.estimator == "oracle" else offline_mu
    return (lambda core_id: RRWMeanDelay(mu)), None


def _arena_policy_factory(cfg, B, mus):
    """``k -> DelayPolicy`` for the ledger arena's ratio-vs-OPT pass."""
    if cfg.grace == "off" or cfg.family == "greedy":
        # no grace period: stock requestor-wins (greedy never waits
        # either; its victim choice has no ledger-arena analogue)
        return lambda k: ImmediateAbortPolicy()
    if cfg.family == "det":
        return lambda k: DeterministicRW(B, k)
    if cfg.family == "rand":
        return lambda k: UniformRW(B, k)
    mu = mus[cfg.estimator]
    return lambda k: optimal_requestor_wins(B, k, mu)


def _estimator_mus(remaining, offline_mu):
    """The three µ̂ sources, given the schedule's realized remaining
    times: the oracle knows the exact mean, the online estimator has
    digested a prefix window, the offline profile is a static guess."""
    if not remaining:  # conflict-free schedule: nothing to estimate from
        return {"oracle": float(offline_mu), "online": float(offline_mu),
                "offline": float(offline_mu)}
    return {
        "oracle": float(np.mean(remaining)),
        "online": float(np.mean(remaining[: min(len(remaining), ONLINE_WINDOW)])),
        "offline": float(offline_mu),
    }


def _machine_metrics(cfg, workload_factory, params, horizon, machine_seed,
                     calib_seed, verify):
    workload = workload_factory()
    oracle_mu = None
    if cfg.grace == "on" and cfg.family == "regime" and cfg.estimator == "oracle":
        tuned = workload.tuned_delay_cycles(params)
        oracle_mu = _oracle_mu(
            workload_factory, params, horizon, calib_seed,
            max(1.0, OFFLINE_REMAINING_FRACTION * tuned),
        )
    policy_factory, observer = _machine_policy(cfg, workload, params, oracle_mu)
    machine = Machine(params, policy_factory)
    if observer is not None:
        machine.commit_observers.append(observer)
    machine.load(workload, seed=machine_seed)
    stats = machine.run(horizon)
    if verify:
        workload.verify(machine)
    return {
        "ops_per_sec": float(stats.throughput_ops_per_sec(params.clock_ghz)),
        "abort_rate": float(stats.abort_rate),
        "fallback_share": stats.total("fallback_ops") / max(stats.ops_completed, 1),
    }


def _arena_metrics(cfg, mu_cycles, arena_conflicts, attempt_trials,
                   attempt_cap, seed, workload_name, rep):
    """Competitive ratio vs OPT + attempts-to-commit for this config.

    The schedule streams derive from ``(seed, workload, rep)`` only, so
    every flip faces the *same* adversary (paired comparison)."""
    B = max(1.0, 0.6 * mu_cycles)
    rng_sched = stream_for(seed, "ablate", "sched", workload_name, rep)
    n_threads = 8
    txns = make_transactions(
        n_threads, max(arena_conflicts // n_threads, 4),
        ExponentialLengths(mu_cycles), rng_sched,
    )
    adversary = RandomAdversary(
        0.9, max_hits=3, chain_weights={2: 0.6, 3: 0.3, 5: 0.1}
    )
    schedule = adversary.build(txns, rng_sched)
    remaining = [c.remaining for c in schedule.conflicts]
    mus = _estimator_mus(
        remaining, OFFLINE_REMAINING_FRACTION * mu_cycles
    )
    arena = ConflictLedgerArena(
        ConflictKind.REQUESTOR_WINS, B, _arena_policy_factory(cfg, B, mus)
    )
    outcome = arena.run(
        schedule, stream_for(seed, "ablate", "draw", workload_name, rep)
    )

    # attempts-to-commit: a long transaction (rho = 4µ) meeting two
    # conflicts per attempt, retried under the config's backoff family;
    # B-growth doubles the abort cost between attempts (Corollary 2)
    y = 4.0 * mu_cycles
    gamma = 2
    conflicts = [(y * (1.0 - (i + 0.5) / gamma) + 1.0, 2) for i in range(gamma)]
    base_factory = _arena_policy_factory(cfg, B, mus)
    if cfg.b_growth == "on":
        def policy_factory(f=base_factory):
            return BackoffPolicy(lambda b: _rebuild(f, b), B, factor=2.0)
    else:
        def policy_factory(f=base_factory):
            return f(2)
    timed = TimedArena(max_attempts=attempt_cap)
    records = timed.run_many(
        np.full(attempt_trials, y),
        lambda rho: conflicts,
        policy_factory,
        stream_for(seed, "ablate", "attempts", workload_name, rep),
    )
    attempts = [r.attempts for r in records]
    return {
        "ratio_vs_opt": float(outcome.ratio),
        "attempts_p90": float(np.percentile(attempts, 90)),
    }


def _rebuild(base_factory, B):
    """Rebuild the k=2 base policy at a grown abort cost ``B``.

    ``DeterministicRW``/``UniformRW``/mean-constrained policies are all
    parameterized by ``B``; the immediate-abort policy has nothing to
    grow and stays itself."""
    policy = base_factory(2)
    if isinstance(policy, ImmediateAbortPolicy):
        return policy
    if isinstance(policy, DeterministicRW):
        return DeterministicRW(B, 2)
    if isinstance(policy, UniformRW):
        return UniformRW(B, 2)
    # mean-constrained / polynomial optimum: re-derive at the grown B,
    # keeping the same µ̂ the estimator reported
    mu = getattr(policy, "mu", None)
    return optimal_requestor_wins(B, 2, mu)


def run_ablation_cell(
    *,
    flip: str,
    workload: str,
    replicates: int = 2,
    horizon: float = 24_000.0,
    n_cores: int = 4,
    arena_conflicts: int = 120,
    attempt_trials: int = 24,
    attempt_cap: int = 64,
    seed: int | None = None,
    verify: bool = True,
) -> list[dict[str, object]]:
    """Measure one (flip, workload) cell; one row per replicate."""
    if replicates < 1:
        raise InvalidParameterError(f"replicates must be >= 1, got {replicates}")
    cfg = axes.config_from_flip(flip)
    if workload not in WORKLOADS:
        raise InvalidParameterError(
            f"unknown ablation workload {workload!r}; "
            f"known: {', '.join(sorted(WORKLOADS))}"
        )
    workload_factory = WORKLOADS[workload]
    axis, value = flip_parts(flip)
    params = _machine_params(cfg, n_cores)
    mu_cycles = float(max(workload_factory().tuned_delay_cycles(params), 1))
    rows: list[dict[str, object]] = []
    for rep in range(replicates):
        # machine seeds depend on (workload, rep) only — common random
        # numbers across flips, so deltas are paired
        machine_seed = int(
            seedseq_for(seed, "ablate", "machine", workload, rep)
            .generate_state(1)[0]
        )
        calib_seed = int(
            seedseq_for(seed, "ablate", "calib", workload, rep)
            .generate_state(1)[0]
        )
        row: dict[str, object] = {
            "flip": flip,
            "axis": axis,
            "value": value,
            "workload": workload,
            "rep": rep,
        }
        row.update(
            _machine_metrics(
                cfg, workload_factory, params, horizon, machine_seed,
                calib_seed, verify,
            )
        )
        row.update(
            _arena_metrics(
                cfg, mu_cycles, arena_conflicts, attempt_trials,
                attempt_cap, seed, workload, rep,
            )
        )
        rows.append(row)
    get_bus().emit(
        NO_SIM_TIME,
        "ablation_run",
        -1,
        flip=flip,
        workload=workload,
        replicates=replicates,
    )
    return rows


def collect_matrix(
    *,
    flips: tuple[str, ...] | list[str] | None = None,
    workloads: tuple[str, ...] | list[str] = ("queue",),
    seed: int | None = None,
    cache=None,
    quick: bool = True,
    **cell_kwargs,
) -> list[dict[str, object]]:
    """Run every (flip, workload) cell serially through the registry.

    The parallel path is ``python -m repro ablate --jobs N``
    (:mod:`repro.ablation.cli`); this helper is the in-process
    equivalent the scorecard and tests use.  ``cache`` short-circuits
    unchanged cells through the content-addressed ``.repro-cache/``.
    """
    from repro.ablation.cells import cell_id
    from repro.experiments.registry import run_experiment

    labels = list(flips) if flips is not None else axes.flip_labels()
    rows: list[dict[str, object]] = []
    for label in labels:
        for workload in workloads:
            result = run_experiment(
                cell_id(label, workload),
                quick=quick,
                seed=seed,
                cache=cache,
                **cell_kwargs,
            )
            rows.extend(result.rows)
    return rows


def run_ablate_rank(
    *,
    workloads: tuple[str, ...] = ("queue",),
    replicates: int = 2,
    horizon: float = 24_000.0,
    n_cores: int = 4,
    arena_conflicts: int = 120,
    attempt_trials: int = 24,
    attempt_cap: int = 64,
    seed: int | None = None,
    cache=None,
) -> list[dict[str, object]]:
    """The importance ranking as experiment rows (one row per flip).

    This is the registry/scorecard entry point (``ablate_rank``); the
    CLI's reports are built from the same rows + scores."""
    from repro.ablation.score import rank_scores, score_matrix

    rows = collect_matrix(
        workloads=workloads,
        seed=seed,
        cache=cache,
        quick=True,
        replicates=replicates,
        horizon=horizon,
        n_cores=n_cores,
        arena_conflicts=arena_conflicts,
        attempt_trials=attempt_trials,
        attempt_cap=attempt_cap,
    )
    ranked = rank_scores(score_matrix(rows, seed=seed))
    return [
        {
            "rank": rank,
            "flip": s.flip,
            "axis": s.axis,
            "value": s.value,
            "importance": s.importance,
        }
        for rank, s in enumerate(ranked, start=1)
    ]
