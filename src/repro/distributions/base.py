"""Common interface for transaction-length distributions.

Every distribution is parametrized by its mean µ (the quantity the
constrained policies consume), samples positive lengths, and is fully
vectorized — one :meth:`LengthDistribution.sample` call per experiment
batch, per the HPC guides.
"""

from __future__ import annotations

import abc
import math
from typing import Callable

import numpy as np

from repro.errors import InvalidParameterError
from repro.rngutil import ensure_rng

__all__ = ["LengthDistribution", "DISTRIBUTION_REGISTRY", "get_distribution"]


class LengthDistribution(abc.ABC):
    """A distribution of (positive) transaction running times."""

    #: Display name used in experiment tables.
    name: str = "lengths"

    @abc.abstractmethod
    def sample(
        self, n: int, rng: np.random.Generator | int | None = None
    ) -> np.ndarray:
        """Draw ``n`` lengths as a float array (all values > 0)."""

    @property
    @abc.abstractmethod
    def mean(self) -> float:
        """The distribution mean µ (exact where closed-form)."""

    def sample_one(self, rng: np.random.Generator | int | None = None) -> float:
        """Draw a single length."""
        return float(self.sample(1, rng)[0])

    def describe(self) -> str:
        return f"{self.name} (mean {self.mean:g})"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.describe()}>"

    @staticmethod
    def _check_mean(mu: float) -> float:
        if not (isinstance(mu, (int, float)) and math.isfinite(mu) and mu > 0):
            raise InvalidParameterError(f"mean must be finite and positive, got {mu!r}")
        return float(mu)


#: Registry of the Section 8.1 distributions by table name; populated by
#: :mod:`repro.distributions.standard`.
DISTRIBUTION_REGISTRY: dict[str, Callable[[float], "LengthDistribution"]] = {}


def register(name: str):
    """Class decorator adding a ``mean -> distribution`` factory to the
    registry under ``name``."""

    def deco(cls):
        DISTRIBUTION_REGISTRY[name] = cls
        cls.name = name
        return cls

    return deco


def get_distribution(name: str, mean: float) -> "LengthDistribution":
    """Instantiate a registered distribution with the given mean."""
    try:
        factory = DISTRIBUTION_REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(DISTRIBUTION_REGISTRY))
        raise InvalidParameterError(
            f"unknown distribution {name!r}; known: {known}"
        ) from None
    return factory(mean)
