"""Transaction-length distributions for the synthetic testbed.

Section 8.1 benchmarks the policies against Geometric, Normal, Uniform,
Exponential and Poisson length distributions; this package implements
those (seeded, vectorized) plus the adversarial distributions used for
Figure 2c and the bimodal lengths of the Figure 3 application.
"""

from __future__ import annotations

from repro.distributions.base import LengthDistribution, DISTRIBUTION_REGISTRY, get_distribution
from repro.distributions.standard import (
    BimodalLengths,
    DeterministicLengths,
    ExponentialLengths,
    GeometricLengths,
    NormalLengths,
    PoissonLengths,
    UniformLengths,
)
from repro.distributions.adversarial import (
    PointMassRemaining,
    WorstCaseForDeterministic,
    MixtureLengths,
)

__all__ = [
    "LengthDistribution",
    "DISTRIBUTION_REGISTRY",
    "get_distribution",
    "GeometricLengths",
    "NormalLengths",
    "UniformLengths",
    "ExponentialLengths",
    "PoissonLengths",
    "DeterministicLengths",
    "BimodalLengths",
    "PointMassRemaining",
    "WorstCaseForDeterministic",
    "MixtureLengths",
]
