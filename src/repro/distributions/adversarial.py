"""Adversarial length distributions (Figure 2c and stress tests).

The deterministic requestor-wins policy aborts at exactly ``B/(k-1)``;
its worst adversary makes the remaining time land just *past* that
point, forcing the full ``kx + B`` loss where OPT pays ``B``
(Theorem 4's ``D = x`` argument).  :class:`WorstCaseForDeterministic`
realizes that adversary inside the synthetic harness.
"""

from __future__ import annotations

import numpy as np

from repro.distributions.base import LengthDistribution
from repro.errors import InvalidParameterError
from repro.rngutil import ensure_rng

__all__ = ["PointMassRemaining", "WorstCaseForDeterministic", "MixtureLengths"]


class PointMassRemaining(LengthDistribution):
    """All mass at a single length (for exact-cost unit tests)."""

    name = "point"

    def __init__(self, value: float) -> None:
        self.value = self._check_mean(value)

    def sample(self, n, rng=None) -> np.ndarray:
        return np.full(n, self.value)

    @property
    def mean(self) -> float:
        return self.value


class WorstCaseForDeterministic(LengthDistribution):
    """Remaining time concentrated just above DET's abort point.

    Lengths are drawn so the *remaining* time at the (uniform) interrupt
    sits in a narrow band ``[x*, (1 + width) x*]`` past the deterministic
    abort point ``x* = B/(k-1)`` with probability ``p_evil``; otherwise a
    benign uniform length is used so the distribution is not a pure
    point mass (matching Figure 2c's "worst-case distribution" framing).

    Used with the harness's direct-remaining mode (the adversary chooses
    ``D`` itself, as the lower-bound argument in Theorem 4 does).
    """

    name = "det-worst"

    def __init__(
        self,
        B: float,
        k: int = 2,
        *,
        width: float = 0.01,
        p_evil: float = 1.0,
        benign_mean: float | None = None,
    ) -> None:
        if B <= 0:
            raise InvalidParameterError(f"B must be positive, got {B}")
        if k < 2:
            raise InvalidParameterError(f"k must be >= 2, got {k}")
        if width <= 0:
            raise InvalidParameterError(f"width must be positive, got {width}")
        if not 0.0 < p_evil <= 1.0:
            raise InvalidParameterError(f"p_evil must be in (0,1], got {p_evil}")
        self.B = float(B)
        self.k = k
        self.width = float(width)
        self.p_evil = float(p_evil)
        self.x_star = self.B / (k - 1)
        self.benign_mean = (
            self.x_star / 2.0 if benign_mean is None else float(benign_mean)
        )

    def sample(self, n, rng=None) -> np.ndarray:
        gen = ensure_rng(rng)
        evil = gen.random(n) < self.p_evil
        band = self.x_star * (1.0 + self.width * gen.random(n))
        benign = (1.0 - gen.random(n)) * 2.0 * self.benign_mean
        return np.where(evil, band, benign)

    @property
    def mean(self) -> float:
        evil_mean = self.x_star * (1.0 + self.width / 2.0)
        return self.p_evil * evil_mean + (1.0 - self.p_evil) * self.benign_mean


class MixtureLengths(LengthDistribution):
    """Weighted mixture of component distributions (ablation helper)."""

    name = "mixture"

    def __init__(
        self, components: list[LengthDistribution], weights: list[float]
    ) -> None:
        if not components or len(components) != len(weights):
            raise InvalidParameterError(
                "components and weights must be equal-length and non-empty"
            )
        w = np.asarray(weights, dtype=float)
        if np.any(w < 0) or w.sum() <= 0:
            raise InvalidParameterError("weights must be non-negative, sum > 0")
        self.components = list(components)
        self.weights = w / w.sum()

    def sample(self, n, rng=None) -> np.ndarray:
        gen = ensure_rng(rng)
        choice = gen.choice(len(self.components), size=n, p=self.weights)
        out = np.empty(n, dtype=float)
        for i, comp in enumerate(self.components):
            mask = choice == i
            cnt = int(mask.sum())
            if cnt:
                out[mask] = comp.sample(cnt, gen)
        return out

    @property
    def mean(self) -> float:
        return float(
            sum(w * c.mean for w, c in zip(self.weights, self.components))
        )
