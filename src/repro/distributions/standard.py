"""The Section 8.1 length distributions, parametrized by their mean.

Each family is instantiated from the target mean µ so the synthetic
harness can sweep distributions at fixed µ (the paper uses µ = 500).
Lengths are continuous-ized where the underlying family is discrete
(Geometric, Poisson) — the conflict model runs in continuous time — but
remain integer-valued draws; all are clipped to be strictly positive so
a "transaction" always has work to do.
"""

from __future__ import annotations

import math

import numpy as np

from repro.distributions.base import LengthDistribution, register
from repro.errors import InvalidParameterError
from repro.rngutil import ensure_rng

__all__ = [
    "GeometricLengths",
    "NormalLengths",
    "UniformLengths",
    "ExponentialLengths",
    "PoissonLengths",
    "DeterministicLengths",
    "BimodalLengths",
]


@register("geometric")
class GeometricLengths(LengthDistribution):
    """Geometric on {1, 2, ...} with success probability ``1/mu``
    (exact mean µ)."""

    def __init__(self, mean: float) -> None:
        mean = self._check_mean(mean)
        if mean < 1.0:
            raise InvalidParameterError(
                f"geometric lengths need mean >= 1, got {mean}"
            )
        self.mu = mean
        self.p = 1.0 / mean

    def sample(self, n, rng=None) -> np.ndarray:
        gen = ensure_rng(rng)
        return gen.geometric(self.p, size=n).astype(float)

    @property
    def mean(self) -> float:
        return self.mu


@register("normal")
class NormalLengths(LengthDistribution):
    """Normal(µ, (µ/4)²) truncated below at 1 by resampling.

    The paper does not state the variance; µ/4 keeps the truncation mass
    below 10^-4 so the realized mean is µ to 4 digits.
    """

    def __init__(self, mean: float, rel_std: float = 0.25) -> None:
        mean = self._check_mean(mean)
        if not 0.0 < rel_std < 1.0:
            raise InvalidParameterError(
                f"rel_std must be in (0, 1), got {rel_std}"
            )
        self.mu = mean
        self.sigma = mean * rel_std

    def sample(self, n, rng=None) -> np.ndarray:
        gen = ensure_rng(rng)
        out = gen.normal(self.mu, self.sigma, size=n)
        bad = out < 1.0
        while np.any(bad):
            out[bad] = gen.normal(self.mu, self.sigma, size=int(bad.sum()))
            bad = out < 1.0
        return out

    @property
    def mean(self) -> float:
        return self.mu


@register("uniform")
class UniformLengths(LengthDistribution):
    """Uniform on ``(0, 2µ]`` (exact mean µ)."""

    def __init__(self, mean: float) -> None:
        self.mu = self._check_mean(mean)

    def sample(self, n, rng=None) -> np.ndarray:
        gen = ensure_rng(rng)
        # (0, 2mu]: flip the half-open side of random() so 0 is excluded.
        return (1.0 - gen.random(n)) * 2.0 * self.mu

    @property
    def mean(self) -> float:
        return self.mu


@register("exponential")
class ExponentialLengths(LengthDistribution):
    """Exponential with mean µ (shifted up by machine epsilon > 0)."""

    def __init__(self, mean: float) -> None:
        self.mu = self._check_mean(mean)

    def sample(self, n, rng=None) -> np.ndarray:
        gen = ensure_rng(rng)
        return np.maximum(gen.exponential(self.mu, size=n), np.finfo(float).tiny)

    @property
    def mean(self) -> float:
        return self.mu


@register("poisson")
class PoissonLengths(LengthDistribution):
    """Poisson(µ) conditioned on being >= 1 (mean ~ µ for µ >> 1)."""

    def __init__(self, mean: float) -> None:
        self.mu = self._check_mean(mean)

    def sample(self, n, rng=None) -> np.ndarray:
        gen = ensure_rng(rng)
        out = gen.poisson(self.mu, size=n).astype(float)
        bad = out < 1.0
        while np.any(bad):
            out[bad] = gen.poisson(self.mu, size=int(bad.sum())).astype(float)
            bad = out < 1.0
        return out

    @property
    def mean(self) -> float:
        # Conditioning on >= 1 shifts the mean by mu*P(0)/(1-P(0)); for
        # the mu = 500 regime of the paper this is ~1e-214, i.e. mu.
        p0 = math.exp(-self.mu)
        return self.mu / (1.0 - p0)


@register("deterministic")
class DeterministicLengths(LengthDistribution):
    """Every transaction takes exactly µ steps (the stack/queue regime
    of Section 8.2: "transaction lengths are short and stable")."""

    def __init__(self, mean: float) -> None:
        self.mu = self._check_mean(mean)

    def sample(self, n, rng=None) -> np.ndarray:
        return np.full(n, self.mu)

    @property
    def mean(self) -> float:
        return self.mu


@register("bimodal")
class BimodalLengths(LengthDistribution):
    """Alternate short and very long transactions (Figure 3, bimodal app).

    Mean µ with a ``short:long`` magnitude ratio; by default the long
    mode is 20x the short mode and each is drawn with probability 1/2,
    so ``short = 2µ/21`` and ``long = 40µ/21``.
    """

    def __init__(
        self, mean: float, *, long_factor: float = 20.0, p_long: float = 0.5
    ) -> None:
        mean = self._check_mean(mean)
        if long_factor <= 1.0:
            raise InvalidParameterError(
                f"long_factor must exceed 1, got {long_factor}"
            )
        if not 0.0 < p_long < 1.0:
            raise InvalidParameterError(f"p_long must be in (0,1), got {p_long}")
        self.mu = mean
        self.long_factor = long_factor
        self.p_long = p_long
        # short * ((1 - p) + p * factor) = mean
        self.short = mean / ((1.0 - p_long) + p_long * long_factor)
        self.long = self.short * long_factor

    def sample(self, n, rng=None) -> np.ndarray:
        gen = ensure_rng(rng)
        is_long = gen.random(n) < self.p_long
        return np.where(is_long, self.long, self.short)

    @property
    def mean(self) -> float:
        return self.mu
