"""Counters and summaries for HTM machine runs."""

from __future__ import annotations

import hashlib
import json
import warnings
from dataclasses import dataclass, field

from repro.obs.metrics import MetricsRegistry
from repro.sim.stats import Welford

__all__ = ["CoreStats", "MachineStats"]


@dataclass
class CoreStats:
    """Per-core counters (one instance per core per run)."""

    core_id: int
    tx_started: int = 0
    tx_committed: int = 0
    tx_aborted: int = 0
    ops_completed: int = 0
    fallback_ops: int = 0
    l1_hits: int = 0
    l1_misses: int = 0
    writebacks: int = 0
    conflicts_received: int = 0
    nacks_sent: int = 0
    abort_reasons: dict[str, int] = field(default_factory=dict)
    grace_delay_stats: Welford = field(default_factory=Welford)

    @property
    def abort_rate(self) -> float:
        total = self.tx_committed + self.tx_aborted
        return self.tx_aborted / total if total else 0.0


class MachineStats:
    """Aggregated machine statistics.

    ``registry`` is the machine's :class:`~repro.obs.metrics.MetricsRegistry`;
    injected-fault counts now live there as ``fault_*`` counters
    (written by :class:`repro.faults.FaultInjector`).  A private
    registry is created when none is given so standalone construction
    keeps working.
    """

    def __init__(
        self, n_cores: int, registry: MetricsRegistry | None = None
    ) -> None:
        self._cores = [CoreStats(core_id=i) for i in range(n_cores)]
        self.cycles = 0.0
        self.cycle_aborts = 0
        self.registry = registry if registry is not None else MetricsRegistry()

    def core(self, core_id: int) -> CoreStats:
        return self._cores[core_id]

    def fault_counts(self) -> dict[str, int]:
        """Injected-fault event counts, keyed as before the registry
        migration (``spurious_aborts``, ``link_jitter_events``, ...)."""
        prefix = "fault_"
        return {
            name[len(prefix):]: value
            for name, value in self.registry.counter_values(prefix).items()
        }

    @property
    def fault_counters(self) -> dict[str, int]:
        """Deprecated alias of :meth:`fault_counts`.

        The dict used to be mutable shared state written by the
        injector; counts now flow through ``registry`` (``fault_*``
        counters) and this returns a fresh copy per call.
        """
        warnings.warn(
            "MachineStats.fault_counters is deprecated; use "
            "MachineStats.fault_counts() or read fault_* counters from "
            "MachineStats.registry",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.fault_counts()

    @property
    def cores(self) -> list[CoreStats]:
        return list(self._cores)

    # -- aggregates ---------------------------------------------------------
    def total(self, attr: str) -> int:
        return sum(getattr(c, attr) for c in self._cores)

    @property
    def ops_completed(self) -> int:
        return self.total("ops_completed")

    @property
    def tx_committed(self) -> int:
        return self.total("tx_committed")

    @property
    def tx_aborted(self) -> int:
        return self.total("tx_aborted")

    @property
    def abort_rate(self) -> float:
        total = self.tx_committed + self.tx_aborted
        return self.tx_aborted / total if total else 0.0

    def abort_reasons(self) -> dict[str, int]:
        merged: dict[str, int] = {}
        for c in self._cores:
            for reason, count in c.abort_reasons.items():
                merged[reason] = merged.get(reason, 0) + count
        return merged

    def throughput_ops_per_sec(self, clock_ghz: float) -> float:
        """Figure 3's y-axis: committed operations per wall-clock second
        at the configured clock."""
        if self.cycles <= 0:
            return 0.0
        return self.ops_completed * clock_ghz * 1e9 / self.cycles

    def summary(self) -> dict[str, float]:
        return {
            "cycles": self.cycles,
            "ops": float(self.ops_completed),
            "commits": float(self.tx_committed),
            "aborts": float(self.tx_aborted),
            "abort_rate": self.abort_rate,
            "fallback_ops": float(self.total("fallback_ops")),
            "l1_hits": float(self.total("l1_hits")),
            "l1_misses": float(self.total("l1_misses")),
            "conflicts": float(self.total("conflicts_received")),
        }

    def digest(self) -> str:
        """Content hash over every counter this object tracks.

        Two runs are behaviorally identical iff their digests match —
        the determinism regression tests compare these instead of
        cherry-picked counters, so any divergence anywhere in the stats
        (per-core counts, abort-reason breakdowns, grace-delay moments,
        fault counters) is caught.
        """
        payload = {
            "cycles": self.cycles,
            "cycle_aborts": self.cycle_aborts,
            "fault_counters": dict(sorted(self.fault_counts().items())),
            "cores": [
                {
                    "core_id": c.core_id,
                    "tx_started": c.tx_started,
                    "tx_committed": c.tx_committed,
                    "tx_aborted": c.tx_aborted,
                    "ops_completed": c.ops_completed,
                    "fallback_ops": c.fallback_ops,
                    "l1_hits": c.l1_hits,
                    "l1_misses": c.l1_misses,
                    "writebacks": c.writebacks,
                    "conflicts_received": c.conflicts_received,
                    "nacks_sent": c.nacks_sent,
                    "abort_reasons": dict(sorted(c.abort_reasons.items())),
                    "grace_n": c.grace_delay_stats.n,
                    "grace_mean": repr(c.grace_delay_stats.mean),
                    "grace_min": repr(c.grace_delay_stats.min),
                    "grace_max": repr(c.grace_delay_stats.max),
                }
                for c in self._cores
            ],
        }
        blob = json.dumps(payload, sort_keys=True).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()
