"""Counters and summaries for HTM machine runs."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.sim.stats import Welford

__all__ = ["CoreStats", "MachineStats"]


@dataclass
class CoreStats:
    """Per-core counters (one instance per core per run)."""

    core_id: int
    tx_started: int = 0
    tx_committed: int = 0
    tx_aborted: int = 0
    ops_completed: int = 0
    fallback_ops: int = 0
    l1_hits: int = 0
    l1_misses: int = 0
    writebacks: int = 0
    conflicts_received: int = 0
    nacks_sent: int = 0
    abort_reasons: dict[str, int] = field(default_factory=dict)
    grace_delay_stats: Welford = field(default_factory=Welford)

    @property
    def abort_rate(self) -> float:
        total = self.tx_committed + self.tx_aborted
        return self.tx_aborted / total if total else 0.0


class MachineStats:
    """Aggregated machine statistics."""

    def __init__(self, n_cores: int) -> None:
        self._cores = [CoreStats(core_id=i) for i in range(n_cores)]
        self.cycles = 0.0
        self.cycle_aborts = 0

    def core(self, core_id: int) -> CoreStats:
        return self._cores[core_id]

    @property
    def cores(self) -> list[CoreStats]:
        return list(self._cores)

    # -- aggregates ---------------------------------------------------------
    def total(self, attr: str) -> int:
        return sum(getattr(c, attr) for c in self._cores)

    @property
    def ops_completed(self) -> int:
        return self.total("ops_completed")

    @property
    def tx_committed(self) -> int:
        return self.total("tx_committed")

    @property
    def tx_aborted(self) -> int:
        return self.total("tx_aborted")

    @property
    def abort_rate(self) -> float:
        total = self.tx_committed + self.tx_aborted
        return self.tx_aborted / total if total else 0.0

    def abort_reasons(self) -> dict[str, int]:
        merged: dict[str, int] = {}
        for c in self._cores:
            for reason, count in c.abort_reasons.items():
                merged[reason] = merged.get(reason, 0) + count
        return merged

    def throughput_ops_per_sec(self, clock_ghz: float) -> float:
        """Figure 3's y-axis: committed operations per wall-clock second
        at the configured clock."""
        if self.cycles <= 0:
            return 0.0
        return self.ops_completed * clock_ghz * 1e9 / self.cycles

    def summary(self) -> dict[str, float]:
        return {
            "cycles": self.cycles,
            "ops": float(self.ops_completed),
            "commits": float(self.tx_committed),
            "aborts": float(self.tx_aborted),
            "abort_rate": self.abort_rate,
            "fallback_ops": float(self.total("fallback_ops")),
            "l1_hits": float(self.total("l1_hits")),
            "l1_misses": float(self.total("l1_misses")),
            "conflicts": float(self.total("conflicts_received")),
        }
