"""Interconnect topologies (extension beyond the fixed-latency default).

Graphite models a 2D mesh; the default simulator charges a flat
``hop`` per network traversal.  This module adds distance-aware
latencies:

* :class:`FixedLatency` — the default: every traversal costs ``hop``.
* :class:`JitteredTopology` — decorator adding seeded random extra
  latency to a fraction of traversals (congestion / flaky links; used
  by the fault-injection layer, :mod:`repro.faults`).
* :class:`MeshTopology` — cores at positions of a near-square 2D grid,
  **distributed directory** with per-line home tiles
  (``home = line mod n_tiles``, the standard static interleave); a
  traversal from tile a to tile b costs
  ``per_hop * (manhattan(a, b) + 1)``.

The machine consults the topology for the latency of each
request/probe/response leg, so hot lines homed far from their users pay
realistic extra latency and the policy comparisons survive a
non-uniform network (ablation-tested in ``tests/test_interconnect.py``).
"""

from __future__ import annotations

import abc
import math

from repro.errors import InvalidParameterError

__all__ = ["Topology", "FixedLatency", "MeshTopology", "JitteredTopology"]


class Topology(abc.ABC):
    """Latency model for one network traversal between agents.

    Agents are core ids ``0..n-1``; the directory is addressed per
    line (it may be centralized or distributed, topology's choice).
    """

    @abc.abstractmethod
    def core_to_dir(self, core: int, line: int) -> int:
        """Cycles for a request/response between a core and the
        directory slice owning ``line``."""

    @abc.abstractmethod
    def dir_to_core(self, line: int, core: int) -> int:
        """Cycles for a probe/grant from the directory slice to a core."""

    def describe(self) -> str:  # pragma: no cover - cosmetic
        return type(self).__name__


class FixedLatency(Topology):
    """Uniform cost per traversal — the simulator's default model."""

    def __init__(self, hop: int) -> None:
        if hop < 0:
            raise InvalidParameterError(f"hop must be >= 0, got {hop}")
        self.hop = hop

    def core_to_dir(self, core: int, line: int) -> int:
        return self.hop

    def dir_to_core(self, line: int, core: int) -> int:
        return self.hop


class JitteredTopology(Topology):
    """Decorator: delay a fraction of traversals by a random extra.

    With probability ``rate`` a traversal pays ``1..max_extra`` extra
    cycles (uniform, drawn from a dedicated seeded stream so the
    underlying machine's randomness is untouched).  Requests, probes,
    grants, and acks all pass through the topology, so jitter lands on
    every coherence message class — including the probe path the
    paper's grace-period mechanism rides on.
    """

    def __init__(
        self,
        inner: Topology,
        rng,
        *,
        rate: float,
        max_extra: int,
        on_jitter=None,
    ) -> None:
        if not 0.0 <= rate <= 1.0:
            raise InvalidParameterError(f"rate must be in [0, 1], got {rate}")
        if max_extra < 1:
            raise InvalidParameterError(
                f"max_extra must be >= 1, got {max_extra}"
            )
        self.inner = inner
        self.rng = rng
        self.rate = rate
        self.max_extra = max_extra
        self.on_jitter = on_jitter

    def _extra(self) -> int:
        if self.rng.random() >= self.rate:
            return 0
        if self.on_jitter is not None:
            self.on_jitter()
        return int(self.rng.integers(1, self.max_extra + 1))

    def core_to_dir(self, core: int, line: int) -> int:
        return self.inner.core_to_dir(core, line) + self._extra()

    def dir_to_core(self, line: int, core: int) -> int:
        return self.inner.dir_to_core(line, core) + self._extra()

    def describe(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Jittered({self.inner.describe()}, rate={self.rate:g}, "
            f"max_extra={self.max_extra})"
        )


class MeshTopology(Topology):
    """2D mesh with a statically interleaved distributed directory.

    Tiles are laid out row-major on the smallest near-square grid that
    fits ``n_cores``; line ``L`` is homed at tile ``L mod n_cores``.
    One traversal costs ``per_hop * (manhattan_distance + 1)`` (the +1
    models router injection/ejection, so even same-tile accesses pay
    one cycle quantum).
    """

    def __init__(self, n_cores: int, per_hop: int = 2) -> None:
        if n_cores < 1:
            raise InvalidParameterError(f"n_cores must be >= 1, got {n_cores}")
        if per_hop < 1:
            raise InvalidParameterError(f"per_hop must be >= 1, got {per_hop}")
        self.n_cores = n_cores
        self.per_hop = per_hop
        self.cols = max(1, math.ceil(math.sqrt(n_cores)))
        self.rows = math.ceil(n_cores / self.cols)

    def position(self, tile: int) -> tuple[int, int]:
        if not 0 <= tile < self.n_cores:
            raise InvalidParameterError(
                f"tile {tile} outside 0..{self.n_cores - 1}"
            )
        return (tile // self.cols, tile % self.cols)

    def home_of(self, line: int) -> int:
        """The tile whose directory slice owns the line."""
        if line < 0:
            raise InvalidParameterError(f"negative line {line}")
        return line % self.n_cores

    def distance(self, a: int, b: int) -> int:
        ra, ca = self.position(a)
        rb, cb = self.position(b)
        return abs(ra - rb) + abs(ca - cb)

    def core_to_dir(self, core: int, line: int) -> int:
        return self.per_hop * (self.distance(core, self.home_of(line)) + 1)

    def dir_to_core(self, line: int, core: int) -> int:
        return self.per_hop * (self.distance(self.home_of(line), core) + 1)

    @property
    def diameter_latency(self) -> int:
        """Worst-case single traversal (corner to corner)."""
        return self.per_hop * ((self.rows - 1) + (self.cols - 1) + 1)
