"""The micro-ISA: what workload programs yield to the core.

Workload operations are Python generators; each ``yield`` hands the
core one of the request objects below, the core performs it through the
memory system, and resumes the generator with the result (the read
value, or the ``(success, old_value)`` pair for CAS).  This mirrors the
paper's Algorithm 1 abstraction — a transaction is a sequence of reads,
writes, and local computation between ``TxBegin``/``TxEnd`` — while
letting data-dependent access patterns (pointer chasing in the stack
and queue) be expressed naturally.

The transaction boundary is *not* an instruction: the core brackets the
whole body generator, so aborts can restart it from scratch.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InvalidParameterError

__all__ = ["Read", "Write", "Compute", "CAS", "Fence"]


@dataclass(frozen=True)
class Read:
    """Load one word.  Transactional inside a transaction body."""

    addr: int

    def __post_init__(self) -> None:
        if self.addr < 0:
            raise InvalidParameterError(f"negative address {self.addr}")


@dataclass(frozen=True)
class Write:
    """Store one word.  Buffered until commit inside a transaction."""

    addr: int
    value: int

    def __post_init__(self) -> None:
        if self.addr < 0:
            raise InvalidParameterError(f"negative address {self.addr}")


@dataclass(frozen=True)
class Compute:
    """Spin the ALU for ``cycles`` cycles (models the transaction body's
    local work; Figure 3's bimodal app varies exactly this)."""

    cycles: int

    def __post_init__(self) -> None:
        if self.cycles < 1:
            raise InvalidParameterError(f"compute cycles must be >= 1")


@dataclass(frozen=True)
class CAS:
    """Atomic compare-and-swap (lock-free fallback paths only).

    Resolves atomically at the moment the directory grants exclusive
    ownership; returns ``(success, old_value)``.  Illegal inside a
    transaction body (HTM already gives atomicity there).
    """

    addr: int
    expected: int
    new: int

    def __post_init__(self) -> None:
        if self.addr < 0:
            raise InvalidParameterError(f"negative address {self.addr}")


@dataclass(frozen=True)
class Fence:
    """One-cycle ordering no-op (keeps fallback loops honest about not
    being free)."""


@dataclass(frozen=True)
class AbortTx:
    """Explicitly abort the running transaction and retry the operation.

    Used for lock subscription: the HTM fast path reads the fallback
    lock first and self-aborts while it is held, the standard
    lock-elision discipline (running a transaction concurrently with a
    fallback lock holder would break atomicity).
    """


@dataclass(frozen=True)
class AcquireX:
    """Internal commit-phase instruction: acquire exclusive ownership of
    the line containing ``addr`` (lazy validation acquires the write set
    at commit).  Emitted by the core's commit sequence, not by
    workloads."""

    addr: int
