"""In-order core: drives workload operations through the memory system.

Operations are generators over the micro-ISA (:mod:`repro.htm.isa`).
The core brackets each HTM attempt with ``begin_tx``/``commit_tx``,
restarts the operation from scratch on abort (with randomized
exponential backoff — requestor-wins HTM livelocks without it), and
escalates to the operation's lock-free fallback path after
``max_retries`` failed attempts, exactly the structure of the paper's
stack/queue benchmarks ("lock-free designs as slow-path backups").

Stale-event safety: every attempt owns a *token*; callbacks captured by
in-flight memory requests or compute timers carry the token and are
dropped if the attempt has since died.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.errors import SimulationError
from repro.htm.controller import AbortReason
from repro.htm.isa import CAS, AbortTx, AcquireX, Compute, Fence, Read, Write

if TYPE_CHECKING:  # pragma: no cover
    from repro.htm.controller import CoreMemSystem
    from repro.htm.machine import Machine
    from repro.workloads.base import Operation, Workload

__all__ = ["Core"]


class Core:
    """One hardware thread."""

    def __init__(
        self,
        core_id: int,
        machine: "Machine",
        mem: "CoreMemSystem",
        workload: "Workload",
        rng: np.random.Generator,
    ) -> None:
        self.core_id = core_id
        self.machine = machine
        self.sim = machine.sim
        self.params = machine.params
        self.mem = mem
        self.workload = workload
        self.rng = rng
        self.stats = machine.stats.core(core_id)

        self._op: "Operation | None" = None
        self._gen = None
        self._attempt = 0
        self._in_htm = False
        self._phase = "body"  # "body" -> "commit" (lazy write-set acquire)
        self._body_result: object = None
        self._token = 0
        self._outstanding = False  # a memory access is in flight
        self._retry_pending = False
        self.idle = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        """Begin issuing operations (staggered a few cycles per core so
        the fleet does not start in lockstep)."""
        jitter = int(self.rng.integers(0, 4 * (self.core_id + 1)))
        self.sim.after(jitter, self._next_op, label="core-start")

    def _next_op(self) -> None:
        if self.machine.draining:
            self.idle = True
            return
        self._op = self.workload.next_op(self.core_id, self.rng)
        if self._op is None:
            self.idle = True
            return
        self.idle = False
        self._attempt = 0
        self._start_attempt()

    # ------------------------------------------------------------------
    def _start_attempt(self) -> None:
        assert self._op is not None
        self._token += 1
        use_fallback = (
            self._attempt >= self.params.max_retries
            and self._op.has_fallback()
        )
        self._phase = "body"
        self._body_result = None
        if use_fallback:
            self._in_htm = False
            self._gen = self._op.fallback(self._make_ctx())
        else:
            self._in_htm = True
            self._gen = self._op.body(self._make_ctx())
            self.mem.begin_tx(self._on_abort)
        self._advance(self._token, None)

    def _make_ctx(self):
        from repro.workloads.base import OpContext

        return OpContext(core_id=self.core_id, rng=self.rng)

    # ------------------------------------------------------------------
    def _advance(self, token: int, value: object) -> None:
        if token != self._token:
            return  # stale resume from a dead attempt
        assert self._gen is not None
        try:
            instr = self._gen.send(value)
        except StopIteration as stop:
            self._complete(token, stop.value)
            return
        self._dispatch(token, instr)

    def _dispatch(self, token: int, instr: object) -> None:
        resume = lambda v=None, t=token: self._advance(t, v)  # noqa: E731
        if isinstance(instr, Compute):
            self.sim.after(instr.cycles, resume, label="compute")
        elif isinstance(instr, Read):
            self._issue(
                token, instr.addr, write=False, value=None, cas=None
            )
        elif isinstance(instr, Write):
            self._issue(
                token, instr.addr, write=True, value=instr.value, cas=None
            )
        elif isinstance(instr, CAS):
            if self._in_htm:
                raise SimulationError(
                    f"core {self.core_id}: CAS inside a transaction"
                )
            self._issue(
                token,
                instr.addr,
                write=False,
                value=None,
                cas=(instr.expected, instr.new),
            )
        elif isinstance(instr, AcquireX):
            if not self._in_htm or self._phase != "commit":
                raise SimulationError(
                    f"core {self.core_id}: AcquireX outside commit phase"
                )
            self._issue(token, instr.addr, write=False, value=None, cas=None,
                        acquire=True)
        elif isinstance(instr, AbortTx):
            if not self._in_htm:
                raise SimulationError(
                    f"core {self.core_id}: AbortTx outside a transaction"
                )
            self.mem.abort_tx(AbortReason.EXPLICIT)
        elif isinstance(instr, Fence):
            self.sim.after(1, resume, label="fence")
        else:
            raise SimulationError(
                f"core {self.core_id}: unknown instruction {instr!r}"
            )

    def _issue(
        self,
        token: int,
        addr: int,
        *,
        write: bool,
        value: int | None,
        cas: tuple[int, int] | None,
        acquire: bool = False,
    ) -> None:
        """Issue one memory access, maintaining the single-outstanding-
        request invariant across aborts.

        ``_outstanding`` must be set before the access: a capacity abort
        fires the abort callback synchronously from inside ``access``,
        and the callback needs to see whether a request slot is held."""
        self._outstanding = True
        issued = self.mem.access(
            addr,
            write=write,
            tx=self._in_htm,
            value=value,
            cas=cas,
            acquire=acquire,
            done=lambda v, t=token: self._mem_done(t, v),
        )
        if not issued:
            # the access died with its transaction before reaching the
            # directory; release the slot and run any deferred retry
            self._outstanding = False
            if self._retry_pending:
                self._retry_pending = False
                self._schedule_retry()

    def _mem_done(self, token: int, value: object) -> None:
        """Memory-access completion: the single outstanding slot drains
        here.  A retry that was deferred because its dead attempt still
        had a request in flight (one request per core at the directory —
        issuing another would double-queue) can now proceed."""
        self._outstanding = False
        if token == self._token:
            self._advance(token, value)
        elif self._retry_pending:
            self._retry_pending = False
            self._schedule_retry()

    # ------------------------------------------------------------------
    def _complete(self, token: int, result: object) -> None:
        if token != self._token:
            return
        if not self._in_htm:
            self.stats.fallback_ops += 1
            self._op_done(result)
            return
        if self._phase == "body":
            # lazy validation: acquire the write set exclusively before
            # the commit can apply (this is the paper's "commit phase")
            self._body_result = result
            self._phase = "commit"
            self._gen = self._commit_gen()
            self._advance(token, None)
            return
        # commit phase finished: every write-set line is owned
        self.mem.finalize_commit(
            lambda t=token, r=self._body_result: self._committed(t, r)
        )

    def _commit_gen(self):
        """Yield one AcquireX per write-set line still lacking M."""
        while True:
            addr = self.mem.next_commit_addr()
            if addr is None:
                return
            yield AcquireX(addr)

    def _committed(self, token: int, result: object) -> None:
        # finalize_commit cannot fail: the write set is fully owned and
        # conflicts would have aborted us before this point
        self._op_done(result)

    def _op_done(self, result: object) -> None:
        assert self._op is not None
        self.stats.ops_completed += 1
        self._op.on_commit(self.machine, self.core_id, result)
        self._op = None
        self._gen = None
        # injected core stalls (OS preemption / SMT interference) land
        # at the operation boundary; 0 without a fault plan
        stall = self.machine.faults.stall_cycles()
        self.sim.after(1 + stall, self._next_op, label="next-op")

    # ------------------------------------------------------------------
    def _on_abort(self, reason: AbortReason) -> None:
        """Called by the mem system whenever the running tx dies."""
        self._token += 1  # kill in-flight resumes
        self._gen = None
        self._attempt += 1
        if self._outstanding:
            # the dead attempt's coherence request is still queued at
            # the directory; retrying now would give this core two
            # outstanding requests — defer until it drains (_mem_done)
            self._retry_pending = True
            return
        self._schedule_retry()

    def _schedule_retry(self) -> None:
        delay = self.params.abort_cycles + self._backoff_cycles()
        self.sim.after(delay, self._retry, self._token, label="retry")

    def _retry(self, token: int) -> None:
        if token != self._token or self._op is None:
            return
        self._start_attempt()

    def _backoff_cycles(self) -> int:
        base = self.params.retry_backoff_base
        if base <= 0:
            return 0
        exp = min(self._attempt, 10)
        raw = min(base * (1 << exp), self.params.retry_backoff_cap)
        return int(raw * (0.5 + self.rng.random()))
