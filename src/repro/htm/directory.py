"""Full-map MSI directory at the shared L2.

The directory is the protocol's ordering point: per-line FIFO service
(a busy bit plus a request queue), probe fan-out to caches holding the
line, and grant once every probe has been acknowledged.  Conflicting
probes may be *delayed* by the receiver's HTM controller — the paper's
grace-period mechanism lives entirely on the probe-ack path, which is
why the directory logic itself needed no modification in the paper's
Graphite implementation either (Section 8.2).

Simplifications (documented in DESIGN.md): S-state evictions are
silent (probes tolerate absent lines); M-state evictions update the
directory metadata synchronously at eviction time (non-transactional
stores publish their values immediately, so the writeback carries no
data); probe fan-out is parallel with a fixed per-hop latency.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ProtocolError
from repro.htm.params import MachineParams
from repro.sim.engine import Simulator

__all__ = ["DirectoryEntry", "PendingRequest", "Directory"]


@dataclass(slots=True)
class PendingRequest:
    """A coherence request awaiting service.

    ``grant_cb(first_touch, latency)`` fires at the requestor the
    instant ownership transfers (the directory's serialization point);
    ``latency`` is the remaining data-return delay the requestor must
    charge before completing the access, and ``first_touch`` says
    whether that delay includes the DRAM fill.
    """

    core: int
    line: int
    exclusive: bool
    grant_cb: Callable[[bool, int], None]
    acks_outstanding: int = 0
    probed_holders: list[int] = field(default_factory=list)


@dataclass(slots=True)
class DirectoryEntry:
    """Directory state for one line."""

    owner: int | None = None
    sharers: set[int] = field(default_factory=set)
    busy: bool = False
    queue: deque[PendingRequest] = field(default_factory=deque)
    touched: bool = False

    def holders(self) -> set[int]:
        out = set(self.sharers)
        if self.owner is not None:
            out.add(self.owner)
        return out


class Directory:
    """The shared-L2 directory controller.

    Parameters
    ----------
    sim:
        The discrete-event simulator.
    params:
        Machine parameters (latencies).
    probe_fn:
        ``probe_fn(target_core, line, needs_exclusive, requestor, ack_cb)``
        — deliver a probe to a core's HTM/L1 controller; the controller
        calls ``ack_cb()`` when the line has been downgraded or
        invalidated (possibly after a grace period).
    queue_wait_cb / queue_clear_cb:
        Optional hooks notifying the machine that a core's request is
        waiting behind another core's in-service request (used for
        chain-size estimation and the waits-for graph).
    """

    def __init__(
        self,
        sim: Simulator,
        params: MachineParams,
        probe_fn: Callable[[int, int, bool, int, Callable[[], None]], None],
        *,
        topology=None,
        queue_wait_cb: Callable[[int, int], None] | None = None,
        queue_clear_cb: Callable[[int], None] | None = None,
    ) -> None:
        from repro.htm.interconnect import FixedLatency

        self.sim = sim
        self.params = params
        self.probe_fn = probe_fn
        self.topology = (
            topology if topology is not None else FixedLatency(params.hop)
        )
        self.queue_wait_cb = queue_wait_cb
        self.queue_clear_cb = queue_clear_cb
        self.entries: dict[int, DirectoryEntry] = {}
        # counters for stats / tests
        self.requests = 0
        self.probes_sent = 0
        self.grants = 0

    # ------------------------------------------------------------------
    def entry(self, line: int) -> DirectoryEntry:
        e = self.entries.get(line)
        if e is None:
            e = DirectoryEntry()
            self.entries[line] = e
        return e

    # -- requests ---------------------------------------------------------
    def request(
        self,
        core: int,
        line: int,
        exclusive: bool,
        grant_cb: Callable[[bool], None],
    ) -> None:
        """A core's L1 asks for the line (GETS or GETX); arrives after
        one network hop."""
        self.requests += 1
        req = PendingRequest(core, line, exclusive, grant_cb)
        self.sim.after(
            self.topology.core_to_dir(core, line),
            self._arrive,
            req,
            label="dir-arrive",
        )

    def _arrive(self, req: PendingRequest) -> None:
        entry = self.entry(req.line)
        entry.queue.append(req)
        if entry.busy:
            head = entry.queue[0]
            if self.queue_wait_cb is not None and head is not req:
                self.queue_wait_cb(req.core, head.core)
        self._service(req.line)

    def _service(self, line: int) -> None:
        entry = self.entry(line)
        if entry.busy or not entry.queue:
            return
        entry.busy = True
        req = entry.queue[0]
        self.sim.after(self.params.dir_lookup, self._lookup_done, req,
                       label="dir-lookup")

    def _lookup_done(self, req: PendingRequest) -> None:
        entry = self.entry(req.line)
        if req.exclusive:
            targets = entry.holders() - {req.core}
            if entry.owner == req.core:
                raise ProtocolError(
                    f"core {req.core} GETX on line {req.line} it already owns"
                )
        else:
            if req.core == entry.owner:
                raise ProtocolError(
                    f"core {req.core} GETS on line {req.line} it owns in M"
                )
            targets = {entry.owner} if entry.owner is not None else set()
        if not targets:
            self._grant(req)
            return
        req.acks_outstanding = len(targets)
        req.probed_holders = sorted(targets)
        for target in req.probed_holders:
            self.probes_sent += 1
            self.sim.after(
                self.topology.dir_to_core(req.line, target),
                self.probe_fn,
                target,
                req.line,
                req.exclusive,
                req.core,
                lambda r=req, t=target: self._ack(r, t),
                label="dir-probe",
            )

    def _ack(self, req: PendingRequest, target: int) -> None:
        if req.acks_outstanding <= 0:
            raise ProtocolError(
                f"spurious ack for line {req.line} core {req.core}"
            )
        req.acks_outstanding -= 1
        if req.acks_outstanding == 0:
            # the closing ack travels back to the directory slice
            self.sim.after(
                self.topology.core_to_dir(target, req.line),
                self._grant,
                req,
                label="dir-ack",
            )

    def _grant(self, req: PendingRequest) -> None:
        entry = self.entry(req.line)
        if not entry.queue or entry.queue[0] is not req:
            raise ProtocolError(f"grant for non-head request on line {req.line}")
        first_touch = not entry.touched
        entry.touched = True
        # state update: probed holders have invalidated/downgraded
        if req.exclusive:
            entry.owner = req.core
            entry.sharers.clear()
        else:
            if entry.owner is not None and entry.owner != req.core:
                entry.sharers.add(entry.owner)  # downgraded M -> S
            entry.owner = None
            entry.sharers.add(req.core)
        entry.queue.popleft()
        entry.busy = False
        self.grants += 1
        # Ownership transfers NOW (the directory is the serialization
        # point); the data-return latency is reported to the requestor,
        # which installs the line immediately and completes the access
        # after the latency.  Installing at the grant instant closes the
        # classic stale-fill race where a probe lands inside the fill
        # window, finds nothing, and leaves a zombie S copy behind.
        latency = self.topology.dir_to_core(req.line, req.core) + (
            self.params.mem_latency if first_touch else 0
        )
        req.grant_cb(first_touch, latency)
        if self.queue_clear_cb is not None:
            self.queue_clear_cb(req.core)
        if entry.queue:
            # the new head stops waiting on the old one
            if self.queue_clear_cb is not None:
                self.queue_clear_cb(entry.queue[0].core)
            if self.queue_wait_cb is not None:
                head = entry.queue[0]
                for waiter in list(entry.queue)[1:]:
                    self.queue_wait_cb(waiter.core, head.core)
        self._service(req.line)

    # -- evictions ----------------------------------------------------------
    def writeback(self, core: int, line: int) -> None:
        """Synchronous metadata update for an M-state eviction."""
        entry = self.entry(line)
        if entry.owner != core:
            raise ProtocolError(
                f"writeback of line {line} by core {core}, owner is "
                f"{entry.owner}"
            )
        entry.owner = None

    def drop_sharer(self, core: int, line: int) -> None:
        """Tx-abort invalidations tell the directory immediately (keeps
        the full map exact; silent S evictions remain tolerated)."""
        entry = self.entry(line)
        entry.sharers.discard(core)
        if entry.owner == core:
            entry.owner = None

    # -- introspection --------------------------------------------------------
    def check_invariants(self, resident: dict[int, set[int]]) -> None:
        """Assert the single-writer invariant against the caches' view.

        ``resident`` maps core -> set of resident lines.  An M owner in
        the directory must be the only core whose cache holds the line
        in M; directory sharers may be stale supersets (silent
        evictions) but never miss a resident holder.
        """
        for line, entry in self.entries.items():
            if entry.owner is not None:
                for core, lines in resident.items():
                    if core != entry.owner and line in lines:
                        # resident elsewhere is legal only in S... which
                        # with an M owner is a violation
                        raise ProtocolError(
                            f"line {line}: owner {entry.owner} but also "
                            f"resident at core {core}"
                        )
            for core, lines in resident.items():
                if line in lines and core not in entry.holders():
                    raise ProtocolError(
                        f"line {line}: resident at core {core} but absent "
                        f"from directory state"
                    )
