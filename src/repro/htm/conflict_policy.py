"""Cycle-granular conflict policies for the HTM simulator.

When a coherence probe conflicts with a receiver transaction, the
receiver's HTM controller consults one of these policies for the grace
period (in whole cycles).  The abort-cost estimate follows the paper's
footnote 1: ``B = tx_age + abort_overhead`` — the work that would be
thrown away plus the fixed cleanup cost — and the chain size ``k`` is
the number of transactions in the waits-for chain at decision time.

The four Figure 3 series map to:

========  =====================================================
NO_DELAY      :class:`NoDelay` (stock requestor-wins HTM)
DELAY_TUNED   :class:`TunedDelay` with the profiled mean
              fast-path transaction length
DELAY_DET     :class:`DetDelay` — Theorem 4's ``B/(k-1)``
DELAY_RAND    :class:`RandDelay` — Theorem 5's uniform draw
========  =====================================================

plus :class:`RRWMeanDelay` (the mean-constrained optimal policy) and
:class:`RegimeAdaptiveDelay` (online-estimated regime dispatch, the decision
service's default) as extension series.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass

import numpy as np

from repro.core.estimators import EstimateSnapshot, OnlineEstimator
from repro.core.ratios import rw_mean_regime_threshold
from repro.core.requestor_wins import optimal_requestor_wins
from repro.errors import InvalidParameterError
from repro.htm.params import MachineParams
from repro.obs.metrics import get_registry

__all__ = [
    "ConflictContext",
    "CyclePolicy",
    "NoDelay",
    "TunedDelay",
    "DetDelay",
    "RandDelay",
    "RRWMeanDelay",
    "RequestorAbortsDelay",
    "HybridDelay",
    "GreedyCM",
    "RegimeAdaptiveDelay",
    "policy_from_name",
]


@dataclass(frozen=True)
class ConflictContext:
    """Everything the receiver knows at conflict time.

    Attributes
    ----------
    tx_age:
        Cycles the receiver transaction has been running.
    chain_k:
        Transactions in the conflict chain (receiver + waiters), >= 2.
    params:
        Machine parameters (for the abort-overhead constant).
    """

    tx_age: int
    chain_k: int
    params: MachineParams
    #: Requestor transaction's age in cycles, or None when the
    #: requestor is non-transactional.  Local online policies must NOT
    #: read this — it exists for the global-knowledge contention-manager
    #: baselines the paper contrasts itself against (GreedyCM).
    requestor_age: int | None = None

    def __post_init__(self) -> None:
        if self.tx_age < 0:
            raise InvalidParameterError(f"tx_age must be >= 0, got {self.tx_age}")
        if self.chain_k < 2:
            raise InvalidParameterError(f"chain_k must be >= 2, got {self.chain_k}")
        if self.requestor_age is not None and self.requestor_age < 0:
            raise InvalidParameterError(
                f"requestor_age must be >= 0, got {self.requestor_age}"
            )

    @property
    def abort_cost(self) -> int:
        """``B = tx_age + abort_overhead`` (paper footnote 1)."""
        return self.tx_age + self.params.abort_overhead


class CyclePolicy(abc.ABC):
    """A conflict-delay policy at cycle granularity."""

    name: str = "policy"

    @abc.abstractmethod
    def decide(self, ctx: ConflictContext, rng: np.random.Generator) -> int:
        """Grace period in cycles (0 = abort the receiver immediately)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name}>"


class NoDelay(CyclePolicy):
    """Abort the receiver immediately — baseline requestor-wins HTM."""

    name = "NO_DELAY"

    def decide(self, ctx: ConflictContext, rng: np.random.Generator) -> int:
        return 0


class TunedDelay(CyclePolicy):
    """Hand-tuned fixed delay (Figure 3's DELAY_TUNED).

    The operator profiles the workload and supplies the mean fast-path
    transaction length; the receiver then always waits that long
    (scaled by ``fraction``, default 1).  Predictably good when lengths
    are stable, poor when they are bimodal — exactly the published
    behaviour.
    """

    name = "DELAY_TUNED"

    def __init__(self, tuned_cycles: int, *, fraction: float = 1.0) -> None:
        if tuned_cycles < 0:
            raise InvalidParameterError(
                f"tuned_cycles must be >= 0, got {tuned_cycles}"
            )
        if fraction <= 0:
            raise InvalidParameterError(f"fraction must be > 0, got {fraction}")
        self.tuned_cycles = tuned_cycles
        self.fraction = fraction

    def decide(self, ctx: ConflictContext, rng: np.random.Generator) -> int:
        return int(round(self.tuned_cycles * self.fraction))


class DetDelay(CyclePolicy):
    """Theorem 4's optimal deterministic rule: wait ``B/(k-1)``."""

    name = "DELAY_DET"

    def decide(self, ctx: ConflictContext, rng: np.random.Generator) -> int:
        return int(ctx.abort_cost // (ctx.chain_k - 1))


class RandDelay(CyclePolicy):
    """Theorem 5's optimal randomized rule: uniform on ``[0, B/(k-1))``."""

    name = "DELAY_RAND"

    def decide(self, ctx: ConflictContext, rng: np.random.Generator) -> int:
        cap = ctx.abort_cost / (ctx.chain_k - 1)
        return int(rng.random() * cap)


class RRWMeanDelay(CyclePolicy):
    """The mean-constrained optimal requestor-wins policy at cycle
    granularity (uses the profiled mean remaining time ``mu_cycles``).

    Falls back to the unconstrained optimum whenever ``mu/B`` leaves the
    Theorem 5/6 regime at the observed ``B`` (the factory handles it).
    Policies are cached per (B, k) bucket — B is bucketed to powers of
    ~1.25 so the cache stays small while the delay distribution tracks
    the transaction age.
    """

    name = "DELAY_RRW_MU"

    def __init__(self, mu_cycles: float) -> None:
        if mu_cycles <= 0:
            raise InvalidParameterError(f"mu_cycles must be > 0, got {mu_cycles}")
        self.mu_cycles = float(mu_cycles)
        self._cache: dict[tuple[int, int], object] = {}

    def _bucket(self, B: int) -> int:
        if B < 1:
            return 1
        return int(round(1.25 ** round(math.log(B, 1.25))))

    def decide(self, ctx: ConflictContext, rng: np.random.Generator) -> int:
        B = self._bucket(max(ctx.abort_cost, 1))
        key = (B, ctx.chain_k)
        policy = self._cache.get(key)
        if policy is None:
            get_registry().counter("policy_builds").inc()
            policy = optimal_requestor_wins(float(B), ctx.chain_k, self.mu_cycles)
            self._cache[key] = policy
        return int(policy.sample(rng))


class RequestorAbortsDelay(CyclePolicy):
    """Extension: requestor-aborts resolution in the HTM (Section 4.2).

    The receiver stalls the requestor for a grace period drawn from the
    optimal requestor-aborts density (Theorems 1/3); when it expires,
    the *requestor* is NACK-aborted and the receiver runs to commit.
    Transactional requestors only — non-speculative requests (CAS,
    fallback stores) cannot be aborted and win by waiting.

    The ``resolution`` attribute is what the HTM controller dispatches
    on; policies without it default to requestor-wins.
    """

    name = "DELAY_RA"
    resolution = "requestor_aborts"

    def __init__(self, mu_cycles: float | None = None) -> None:
        if mu_cycles is not None and mu_cycles <= 0:
            raise InvalidParameterError(f"mu_cycles must be > 0, got {mu_cycles}")
        self.mu_cycles = mu_cycles
        self._cache: dict[tuple[int, int], object] = {}

    def _bucket(self, B: int) -> int:
        if B < 1:
            return 1
        return int(round(1.25 ** round(math.log(B, 1.25))))

    def decide(self, ctx: ConflictContext, rng: np.random.Generator) -> int:
        from repro.core.requestor_aborts import optimal_requestor_aborts

        B = self._bucket(max(ctx.abort_cost, 1))
        key = (B, ctx.chain_k)
        policy = self._cache.get(key)
        if policy is None:
            get_registry().counter("policy_builds").inc()
            policy = optimal_requestor_aborts(
                float(B), ctx.chain_k, self.mu_cycles
            )
            self._cache[key] = policy
        return max(1, int(policy.sample(rng)))


class HybridDelay(CyclePolicy):
    """Extension: the paper's "Implications" hybrid, live in the HTM.

    Per conflict, picks the resolution strategy with the better optimal
    competitive ratio at the observed chain size — requestor-aborts for
    ``k = 2``, requestor-wins for ``k >= 3`` — and draws the grace
    period from that strategy's optimal density.
    """

    name = "DELAY_HYBRID"

    def __init__(self, mu_cycles: float | None = None) -> None:
        self._rw = RRWMeanDelay(mu_cycles) if mu_cycles else None
        self._ra = RequestorAbortsDelay(mu_cycles)
        self._rw_plain_cache: dict[tuple[int, int], object] = {}
        self.mu_cycles = mu_cycles

    @staticmethod
    def resolution(ctx: ConflictContext) -> str:
        from repro.core.ratios import rand_ra_ratio, rand_rw_optimal_ratio

        if rand_ra_ratio(ctx.chain_k) <= rand_rw_optimal_ratio(ctx.chain_k):
            return "requestor_aborts"
        return "requestor_wins"

    def decide(self, ctx: ConflictContext, rng: np.random.Generator) -> int:
        if self.resolution(ctx) == "requestor_aborts":
            get_registry().counter("hybrid_ra_choices").inc()
            return self._ra.decide(ctx, rng)
        get_registry().counter("hybrid_rw_choices").inc()
        if self._rw is not None:
            return self._rw.decide(ctx, rng)
        # unconstrained requestor-wins optimum
        from repro.core.requestor_wins import optimal_requestor_wins

        B = self._ra._bucket(max(ctx.abort_cost, 1))
        key = (B, ctx.chain_k)
        policy = self._rw_plain_cache.get(key)
        if policy is None:
            get_registry().counter("policy_builds").inc()
            policy = optimal_requestor_wins(float(B), ctx.chain_k)
            self._rw_plain_cache[key] = policy
        return int(policy.sample(rng))


class RegimeAdaptiveDelay(CyclePolicy):
    """Online-estimated adaptive policy: live regime dispatch.

    Where :class:`RRWMeanDelay` trusts an operator-profiled ``µ``, this
    policy estimates everything from the stream it serves.  Every
    conflict feeds the receiver's ``(B, k)`` into an
    :class:`~repro.core.estimators.OnlineEstimator`; committed
    transactions report their durations through
    :meth:`observe_commit`.  Every ``refresh_every`` decisions the
    policy re-reads the windowed estimates and re-dispatches between
    the paper's regimes:

    ``bootstrap``
        fewer than ``min_samples`` conflicts in the window — too thin
        to trust a mean, so play Theorem 4's deterministic ``B/(k-1)``
        (the safest unconditional 2+1/(k-1) guarantee).
    ``mean``
        a µ estimate exists and ``µ̂/B̂`` is inside the Theorem 5/6
        mean regime (:func:`~repro.core.ratios.rw_mean_regime_threshold`
        at the estimated k̂) — draw from the mean-constrained optimal
        density.
    ``rand``
        otherwise — the unconstrained randomized optimum (uniform at
        k = 2, Theorem 6's polynomial density at k >= 3).

    Because the window decays old samples, a workload shift (longer
    transactions, deeper chains) walks the estimates to the new regime
    within one window; each re-dispatch increments the
    ``regime_switches`` counter and is what the serve layer traces as
    ``regime_switch`` events.
    """

    name = "DELAY_REGIME"

    #: dispatchable regimes, in cold-start order
    REGIMES = ("bootstrap", "rand", "mean")

    def __init__(
        self,
        estimator: OnlineEstimator | None = None,
        *,
        window: int = 1024,
        min_samples: int = 32,
        refresh_every: int = 64,
    ) -> None:
        if min_samples < 1:
            raise InvalidParameterError(
                f"min_samples must be >= 1, got {min_samples}"
            )
        if refresh_every < 1:
            raise InvalidParameterError(
                f"refresh_every must be >= 1, got {refresh_every}"
            )
        self.estimator = (
            estimator if estimator is not None else OnlineEstimator(window)
        )
        self.min_samples = min_samples
        self.refresh_every = refresh_every
        self.regime = "bootstrap"
        self.regime_switches = 0
        self._decisions = 0
        self._snapshot = self.estimator.snapshot()
        self._cache: dict[tuple[int, int, int], object] = {}

    # -- estimator feeds ---------------------------------------------------
    def observe_commit(self, duration: float) -> None:
        """Report one committed transaction's duration (the µ feed)."""
        self.estimator.observe_commit(duration)

    def classify(self, snap: EstimateSnapshot) -> str:
        """Which regime the estimates currently select."""
        if snap.n_conflicts < self.min_samples:
            return "bootstrap"
        if snap.n_commits == 0 or math.isnan(snap.mu_hat):
            return "rand"
        k = snap.k_round()
        b = snap.b_hat
        if b <= 0:
            return "rand"
        if snap.mu_hat / b < rw_mean_regime_threshold(k):
            return "mean"
        return "rand"

    def _refresh(self) -> None:
        self._snapshot = self.estimator.snapshot()
        new = self.classify(self._snapshot)
        if new != self.regime:
            get_registry().counter("regime_switches").inc()
            self.regime_switches += 1
            self.regime = new

    @staticmethod
    def _bucket(B: int) -> int:
        if B < 1:
            return 1
        return int(round(1.25 ** round(math.log(B, 1.25))))

    def decide(self, ctx: ConflictContext, rng: np.random.Generator) -> int:
        self.estimator.observe_conflict(ctx.abort_cost, ctx.chain_k)
        self._decisions += 1
        if self._decisions % self.refresh_every == 1 or self.refresh_every == 1:
            self._refresh()
        if self.regime == "bootstrap":
            return int(ctx.abort_cost // (ctx.chain_k - 1))
        B = self._bucket(max(ctx.abort_cost, 1))
        mu = self._snapshot.mu_hat if self.regime == "mean" else None
        # quantize µ̂ so the per-(B, k, µ-bucket) policy cache stays
        # small while the density still tracks the drifting estimate
        mu_key = -1 if mu is None else self._bucket(max(int(round(mu)), 1))
        key = (B, ctx.chain_k, mu_key)
        policy = self._cache.get(key)
        if policy is None:
            get_registry().counter("policy_builds").inc()
            policy = optimal_requestor_wins(
                float(B),
                ctx.chain_k,
                None if mu_key < 0 else float(mu_key),
            )
            self._cache[key] = policy
        return int(policy.sample(rng))


class GreedyCM(CyclePolicy):
    """Baseline: the Greedy contention manager (global knowledge).

    The paper positions its policies against software-TM contention
    managers that "have global knowledge about the set of running
    transactions"; Greedy (Guerraoui-Herlihy-Pochon) is the canonical
    one — on conflict, the *older* transaction wins immediately.  This
    implementation uses the requestor's true age (information a local
    HTM policy cannot have) to decide which side aborts, with no grace
    period: receiver older ⇒ requestor NACKed, else receiver aborts.

    A non-transactional requestor has no timestamp and always wins (the
    receiver aborts), matching Greedy's treatment of irrevocable
    operations.
    """

    name = "GREEDY_CM"

    def decide(self, ctx: ConflictContext, rng: np.random.Generator) -> int:
        return 0  # greedy never waits; resolution picks the victim

    @staticmethod
    def resolution(ctx: ConflictContext) -> str:
        if ctx.requestor_age is None:
            return "requestor_wins"  # irrevocable requestor
        # older transaction (larger age) wins
        if ctx.tx_age >= ctx.requestor_age:
            return "requestor_aborts"
        return "requestor_wins"


def policy_from_name(
    name: str,
    params: MachineParams,
    *,
    tuned_cycles: int | None = None,
    mu_cycles: float | None = None,
) -> CyclePolicy:
    """Build a policy by its Figure 3 series name."""
    key = name.upper()
    if key == "NO_DELAY":
        return NoDelay()
    if key == "DELAY_TUNED":
        if tuned_cycles is None:
            raise InvalidParameterError("DELAY_TUNED needs tuned_cycles")
        return TunedDelay(tuned_cycles)
    if key == "DELAY_DET":
        return DetDelay()
    if key == "DELAY_RAND":
        return RandDelay()
    if key == "DELAY_RRW_MU":
        if mu_cycles is None:
            raise InvalidParameterError("DELAY_RRW_MU needs mu_cycles")
        return RRWMeanDelay(mu_cycles)
    if key == "DELAY_RA":
        return RequestorAbortsDelay(mu_cycles)
    if key == "DELAY_HYBRID":
        return HybridDelay(mu_cycles)
    if key == "GREEDY_CM":
        return GreedyCM()
    if key == "DELAY_REGIME":
        return RegimeAdaptiveDelay()
    raise InvalidParameterError(
        f"unknown conflict policy {name!r}; known: NO_DELAY, DELAY_TUNED, "
        f"DELAY_DET, DELAY_RAND, DELAY_RRW_MU, DELAY_RA, DELAY_HYBRID, "
        f"GREEDY_CM, DELAY_REGIME"
    )
