"""Private L1 cache: set-associative tags, MSI states, transactional bits.

Tag-only: line *values* live in the machine's central memory (plus
per-transaction write buffers); see the package docstring for why this
is coherent.  The cache tracks what matters to the protocol — presence,
M/S state, LRU, and the transactional read/write bits of Algorithm 1.

Evicting a transactional line aborts the owning transaction (a
*capacity abort*), exactly as Algorithm 1 line 4 prescribes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ProtocolError
from repro.htm.params import MachineParams

__all__ = ["LineState", "CacheLine", "L1Cache"]


class LineState(enum.Enum):
    """MSI stable states (I is represented by absence from the set)."""

    SHARED = "S"
    MODIFIED = "M"


@dataclass(slots=True)
class CacheLine:
    """One resident line's bookkeeping."""

    line: int
    state: LineState
    tx_read: bool = False
    tx_write: bool = False
    lru: int = 0

    @property
    def transactional(self) -> bool:
        return self.tx_read or self.tx_write


class L1Cache:
    """Set-associative L1 with LRU replacement.

    The cache never talks to the network itself; the HTM controller
    drives all state changes and is responsible for protocol legality —
    the methods here raise :class:`ProtocolError` on illegal transitions
    so controller bugs surface immediately instead of corrupting runs.
    """

    def __init__(self, params: MachineParams) -> None:
        self.params = params
        self._sets: list[dict[int, CacheLine]] = [
            {} for _ in range(params.l1_sets)
        ]
        self._tick = 0
        # Ways temporarily unavailable to new fills (fault injection:
        # SMT-sibling / way-partitioning pressure).  Reduces the
        # *effective* associativity victim selection works with; lines
        # already resident above the shrunk limit stay resident until
        # a fill needs their set, so shrinking mid-run is safe.
        self.reserved_ways = 0

    @property
    def effective_assoc(self) -> int:
        return max(1, self.params.l1_assoc - self.reserved_ways)

    # -- lookup -----------------------------------------------------------
    def _set_of(self, line: int) -> dict[int, CacheLine]:
        return self._sets[line % self.params.l1_sets]

    def lookup(self, line: int) -> CacheLine | None:
        """Find a resident line (does not touch LRU)."""
        return self._set_of(line).get(line)

    def touch(self, entry: CacheLine) -> None:
        """Mark the line most-recently-used."""
        self._tick += 1
        entry.lru = self._tick

    def has_state(self, line: int, *, exclusive: bool) -> bool:
        """Whether an access can hit locally (S suffices for reads)."""
        entry = self.lookup(line)
        if entry is None:
            return False
        return entry.state is LineState.MODIFIED or not exclusive

    # -- fills and evictions ------------------------------------------------
    def victim_for(self, line: int) -> CacheLine | None:
        """The line that must be evicted to make room for ``line``
        (None if the set has a free way or the line is resident)."""
        bucket = self._set_of(line)
        if line in bucket or len(bucket) < self.effective_assoc:
            return None
        return min(bucket.values(), key=lambda e: e.lru)

    def fill(self, line: int, state: LineState) -> CacheLine:
        """Insert (or upgrade) a line; caller must have evicted first."""
        bucket = self._set_of(line)
        entry = bucket.get(line)
        if entry is not None:
            entry.state = state
        else:
            if len(bucket) >= self.params.l1_assoc:
                raise ProtocolError(
                    f"fill of line {line} into a full set (evict first)"
                )
            entry = CacheLine(line=line, state=state)
            bucket[line] = entry
        self.touch(entry)
        return entry

    def evict(self, line: int) -> CacheLine:
        """Remove a resident line and return its final bookkeeping."""
        bucket = self._set_of(line)
        entry = bucket.pop(line, None)
        if entry is None:
            raise ProtocolError(f"evicting non-resident line {line}")
        return entry

    # -- probes -------------------------------------------------------------
    def downgrade(self, line: int) -> None:
        """M -> S in response to a GETS probe."""
        entry = self.lookup(line)
        if entry is None or entry.state is not LineState.MODIFIED:
            raise ProtocolError(f"downgrade of line {line} not in M")
        entry.state = LineState.SHARED

    def invalidate(self, line: int) -> None:
        """Drop the line in response to a GETX probe (must be resident)."""
        self.evict(line)

    # -- transactional bits ---------------------------------------------------
    def mark_tx(self, line: int, *, write: bool) -> None:
        """Set a transactional bit.  Under lazy validation a tx-write
        bit may sit on an S line during execution (the store is
        buffered; exclusivity is acquired at commit)."""
        entry = self.lookup(line)
        if entry is None:
            raise ProtocolError(f"tx-marking non-resident line {line}")
        if write:
            entry.tx_write = True
        else:
            entry.tx_read = True

    def clear_tx_bits(self) -> list[int]:
        """Commit: clear every transactional bit; returns affected lines."""
        cleared = []
        for bucket in self._sets:
            for entry in bucket.values():
                if entry.transactional:
                    entry.tx_read = entry.tx_write = False
                    cleared.append(entry.line)
        return cleared

    def invalidate_tx_lines(self) -> list[int]:
        """Abort: drop every transactional line; returns dropped lines."""
        dropped = []
        for bucket in self._sets:
            doomed = [ln for ln, e in bucket.items() if e.transactional]
            for ln in doomed:
                del bucket[ln]
                dropped.append(ln)
        return dropped

    def transactional_lines(self) -> list[int]:
        return [
            e.line
            for bucket in self._sets
            for e in bucket.values()
            if e.transactional
        ]

    def resident_lines(self) -> list[int]:
        return [e.line for bucket in self._sets for e in bucket.values()]

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._sets)
