"""The simulated multicore: cores + L1s + directory + memory, wired up.

The machine also owns the *waits-for graph* used for two things the
paper's model requires: chain-size estimation (the ``k`` fed to the
conflict policy) and cycle detection (assumption (c) — real HTMs that
delay responses detect conflict cycles and abort every transaction
involved; reference [2] in the paper).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.errors import InvalidParameterError, SimulationError
from repro.faults.injectors import injector_for
from repro.faults.plan import FaultPlan
from repro.htm.conflict_policy import CyclePolicy
from repro.htm.controller import AbortReason, CoreMemSystem
from repro.htm.directory import Directory
from repro.htm.params import MachineParams
from repro.htm.stats import MachineStats
from repro.obs import metrics as obs_metrics
from repro.obs import tracebus as obs_trace
from repro.rngutil import spawn_streams
from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.htm.core_model import Core
    from repro.workloads.base import Workload

__all__ = ["Machine", "MachineStats"]


class Machine:
    """A runnable HTM multicore.

    Typical use::

        machine = Machine(params, policy_factory=lambda cid: RandDelay())
        machine.load(workload)
        stats = machine.run(horizon_cycles=2_000_000, seed=1)
        print(stats.throughput_ops_per_sec(params.clock_ghz))
    """

    def __init__(
        self,
        params: MachineParams,
        policy_factory,
        *,
        detect_cycles: bool = True,
        wedge_aware: bool = True,
        topology=None,
        faults: "FaultPlan | dict | None" = None,
    ) -> None:
        self.params = params
        self.sim = Simulator()
        # fault injection (repro.faults): a null plan keeps the shared
        # inert injector, so clean runs are byte-identical to a machine
        # built without the fault layer
        if isinstance(faults, dict):
            faults = FaultPlan.from_dict(faults)
        self.fault_plan = faults
        self.faults = injector_for(faults)
        self.memory: dict[int, int] = {}
        # observability: an always-on machine-local metrics registry.
        # When a process-wide capture is active (repro.obs.capture /
        # the CLI's --metrics-out), instruments chain to it so every
        # increment lands in both; otherwise the parent is None and the
        # local add is the whole cost.
        parent = obs_metrics.get_registry()
        self.metrics = obs_metrics.MetricsRegistry(
            parent=parent if parent.enabled else None
        )
        self.bus = obs_trace.get_bus()
        self.stats = MachineStats(params.n_cores, registry=self.metrics)
        # optional repro.obs.PhaseProfiler (see attach_profiler)
        self.profiler = None
        self.detect_cycles = detect_cycles
        # wedge_aware: receivers whose unacquired write set contains the
        # contested line abort immediately (structurally D = inf); see
        # CoreMemSystem._is_wedged and the abl_wedge ablation bench
        self.wedge_aware = wedge_aware
        self.draining = False
        # line 0 is reserved so that word address 0 can serve as the
        # null pointer in linked workloads
        self._alloc_ptr = params.line_words
        self._policy_factory = policy_factory
        self._streams: list[np.random.Generator] = []
        self.mems: list[CoreMemSystem] = []
        self.cores: list["Core"] = []
        self.workload: "Workload | None" = None
        # callbacks fired with each committed transaction's duration in
        # cycles (used by the online profiler extension)
        self.commit_observers: list = []
        # attach a repro.sim.trace.Tracer for event timelines
        from repro.sim.trace import NullTracer

        self.tracer = NullTracer()
        # waits-for multiset: (waiter_core, holder_core) -> count
        self._waits: dict[tuple[int, int], int] = {}
        # incremental adjacency views of the same multiset (holder ->
        # waiters, waiter -> holders), maintained by note_wait /
        # clear_wait so the cycle/chain traversals iterate a node's
        # neighbors directly instead of scanning every edge
        self._waiters_adj: dict[int, set[int]] = {}
        self._holders_adj: dict[int, set[int]] = {}
        self.directory = Directory(
            self.sim,
            params,
            self._deliver_probe,
            topology=topology,  # None -> FixedLatency(params.hop)
            queue_wait_cb=None,  # queue waits counted via queued_behind()
            queue_clear_cb=None,
        )

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def emit(self, kind: str, core: int = -1, **detail) -> None:
        """Publish one typed event at the current simulated time to the
        attached tracer and the process trace bus (both optional; the
        disabled path is two attribute reads)."""
        if self.tracer.enabled:
            self.tracer.emit(self.sim.now, kind, core, **detail)
        if self.bus.enabled:
            self.bus.emit(self.sim.now, kind, core, **detail)

    def attach_profiler(self, profiler) -> None:
        """Attach a :class:`repro.obs.PhaseProfiler`: the kernel routes
        event firing through it and :meth:`run` times its phases."""
        self.profiler = profiler
        self.sim.profiler = profiler

    # ------------------------------------------------------------------
    # Memory allocation (workload setup)
    # ------------------------------------------------------------------
    def alloc(self, words: int, *, line_aligned: bool = True) -> int:
        """Bump-allocate ``words`` of address space; line alignment keeps
        logically distinct objects on distinct cache lines (the usual
        padding discipline for concurrent data structures)."""
        if words < 1:
            raise InvalidParameterError(f"alloc of {words} words")
        if line_aligned and self._alloc_ptr % self.params.line_words:
            self._alloc_ptr += (
                self.params.line_words - self._alloc_ptr % self.params.line_words
            )
        base = self._alloc_ptr
        self._alloc_ptr += words
        return base

    def poke(self, addr: int, value: int) -> None:
        """Initialize memory (setup only)."""
        self.memory[addr] = value

    def peek(self, addr: int) -> int:
        return self.memory.get(addr, 0)

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------
    def load(self, workload: "Workload", *, seed: int | None = None) -> None:
        """Instantiate mem systems and cores, let the workload set up its
        shared state."""
        from repro.htm.core_model import Core  # local import breaks cycle

        n = self.params.n_cores
        self._streams = spawn_streams(seed, 2 * n)
        self.mems = [
            CoreMemSystem(i, self, self._policy_factory(i), self._streams[i])
            for i in range(n)
        ]
        self.workload = workload
        workload.setup(self)
        self.cores = [
            Core(i, self, self.mems[i], workload, self._streams[n + i])
            for i in range(n)
        ]
        # Arm the injector last: its streams derive from the "faults"
        # namespace of the same seed, independent of every per-core
        # stream spawned above (loading with a plan never perturbs the
        # workload's own randomness).
        self.faults.arm(self, seed if isinstance(seed, int) else None)

    def run(
        self,
        horizon_cycles: float,
        *,
        warmup_cycles: float = 0.0,
        drain: bool = True,
        wall_timeout: float | None = None,
    ) -> MachineStats:
        """Run all cores until the cycle horizon; returns the stats.

        ``warmup_cycles`` lets caches and contention reach steady state
        before counters are (re)started.  With ``drain`` (default), no
        new operations are issued past the horizon but in-flight ones
        run to completion, so workload verification sees a quiescent
        state (no torn in-flight transactions).  Throughput uses the
        horizon window; at most one drained op per core lands outside
        it.

        ``wall_timeout`` (seconds) arms the simulation kernel's
        watchdog: the run raises
        :class:`~repro.errors.ExperimentTimeoutError` if it exceeds the
        wall-clock budget — the embedder-level safety net behind the
        experiment runner's ``--timeout``.
        """
        if not self.cores:
            raise SimulationError("load() a workload before run()")
        if horizon_cycles <= warmup_cycles:
            raise InvalidParameterError("horizon must exceed warmup")
        deadline = None
        if wall_timeout is not None:
            import time

            # watchdog deadline only — wall time never reaches simulated
            # time or any scheduling decision
            deadline = time.monotonic() + wall_timeout  # simlint: disable=DET001 -- watchdog wall-clock budget
        self.draining = False
        for core in self.cores:
            core.start()
        prof = self.profiler

        def timed(name):
            from contextlib import nullcontext

            return prof.phase(name) if prof is not None else nullcontext()

        if warmup_cycles > 0.0:
            with timed("warmup"):
                self.sim.run(until=warmup_cycles, wall_deadline=deadline)
            self._reset_counters()
        with timed("measure"):
            self.sim.run(until=horizon_cycles, wall_deadline=deadline)
        self.stats.cycles = horizon_cycles - warmup_cycles
        if drain:
            self.draining = True
            # generous safety horizon: every in-flight op finishes well
            # within this unless the machine is livelocked (a bug)
            with timed("drain"):
                self.sim.run(
                    until=horizon_cycles + max(1e6, horizon_cycles),
                    stop_when=lambda: all(c.idle for c in self.cores),
                    wall_deadline=deadline,
                )
            if not all(c.idle for c in self.cores):
                raise SimulationError(
                    "drain did not quiesce: in-flight operations survived "
                    "a full extra horizon (livelock?)"
                )
        return self.stats

    def _reset_counters(self) -> None:
        # zero the registry in place: controller-held handles keep
        # pointing at the same instruments after the warmup reset
        self.metrics.reset()
        fresh = MachineStats(self.params.n_cores, registry=self.metrics)
        for mem in self.mems:
            mem.stats = fresh.core(mem.core_id)
        for core in self.cores:
            core.stats = fresh.core(core.core_id)
        self.stats = fresh

    # ------------------------------------------------------------------
    # Probe delivery (directory -> core controller)
    # ------------------------------------------------------------------
    def _deliver_probe(self, target, line, exclusive, requestor, ack) -> None:
        # at-least-once fabrics may duplicate the probe in flight; the
        # receiver dedupes by message id, so the duplicate is counted
        # by the injector and dropped here (see docs/ROBUSTNESS.md)
        self.faults.probe_duplicated()
        self.mems[target].handle_probe(line, exclusive, requestor, ack)

    # ------------------------------------------------------------------
    # Waits-for graph
    # ------------------------------------------------------------------
    def note_wait(self, waiter: int, holder: int) -> None:
        key = (waiter, holder)
        count = self._waits.get(key, 0) + 1
        self._waits[key] = count
        if count == 1:
            self._waiters_adj.setdefault(holder, set()).add(waiter)
            self._holders_adj.setdefault(waiter, set()).add(holder)

    def clear_wait(self, waiter: int, holder: int) -> None:
        key = (waiter, holder)
        count = self._waits.get(key, 0)
        if count <= 1:
            if self._waits.pop(key, None) is not None:
                self._drop_edge(waiter, holder)
        else:
            self._waits[key] = count - 1

    def _drop_edge(self, waiter: int, holder: int) -> None:
        waiters = self._waiters_adj.get(holder)
        if waiters is not None:
            waiters.discard(waiter)
            if not waiters:
                del self._waiters_adj[holder]
        holders = self._holders_adj.get(waiter)
        if holders is not None:
            holders.discard(holder)
            if not holders:
                del self._holders_adj[waiter]

    def _waiters_of(self, holder: int) -> set[int]:
        return set(self._waiters_adj.get(holder, ()))

    def _holders_of(self, waiter: int) -> set[int]:
        return set(self._holders_adj.get(waiter, ()))

    def transitive_waiters(self, holder: int) -> set[int]:
        """Every core transitively delayed by ``holder``."""
        seen: set[int] = set()
        frontier = [holder]
        adj = self._waiters_adj
        while frontier:
            node = frontier.pop()
            # sorted: set order is hash-dependent, and the traversal
            # order here decides abort victims -> event schedule
            for waiter in sorted(adj.get(node, ())):
                if waiter not in seen and waiter != holder:
                    seen.add(waiter)
                    frontier.append(waiter)
        return seen

    def chain_size(self, holder: int) -> int:
        """The paper's ``k``: receiver + every transaction it delays.

        Direct probe waiters and their transitive waiters come from the
        waits-for graph; requests queued at the directory behind a
        waiter's in-service request are delayed too and are counted via
        :meth:`queued_behind`.
        """
        waiters = self.transitive_waiters(holder)
        queued = sum(self.queued_behind(w) for w in sorted(waiters))
        return 1 + len(waiters) + queued

    def queued_behind(self, core: int) -> int:
        """Requests queued behind ``core``'s in-service request(s)."""
        total = 0
        for entry in self.directory.entries.values():
            if entry.busy and entry.queue and entry.queue[0].core == core:
                total += len(entry.queue) - 1
        return total

    def check_cycle(self, requestor: int) -> None:
        """After adding edge ``requestor -> holder``: if the requestor is
        reachable *from* any of its holders, a conflict cycle exists;
        abort every transactional core on it (paper assumption (c))."""
        if not self.detect_cycles:
            return
        path = self._find_cycle_path(requestor)
        if path is None:
            return
        self.stats.cycle_aborts += 1
        for core_id in path:
            mem = self.mems[core_id]
            if mem.tx_active:
                mem.abort_tx(AbortReason.CYCLE)

    def _find_cycle_path(self, start: int) -> list[int] | None:
        """DFS over waits-for edges from ``start``; returns the cycle's
        node list if ``start`` is reachable from itself."""
        stack: list[tuple[int, list[int]]] = [(start, [start])]
        visited: set[int] = set()
        adj = self._holders_adj
        while stack:
            node, path = stack.pop()
            # sorted: which cycle is found first (and therefore which
            # cores abort) must not depend on set hash order
            for holder in sorted(adj.get(node, ())):
                if holder == start:
                    return path
                if holder not in visited:
                    visited.add(holder)
                    stack.append((holder, path + [holder]))
        return None

    # ------------------------------------------------------------------
    # Invariant checking (tests call this at quiescent points)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        resident = {
            mem.core_id: set(mem.cache.resident_lines()) for mem in self.mems
        }
        self.directory.check_invariants(resident)
        for mem in self.mems:
            if not mem.tx_active and mem.cache.transactional_lines():
                raise SimulationError(
                    f"core {mem.core_id}: tx bits set without an active tx"
                )
