"""Machine configuration for the HTM simulator.

Latencies are in core cycles and follow the ballpark of Graphite's
default private-L1 / shared-L2 configuration (the paper does not list
its exact table; relative policy comparisons are insensitive to the
constants, which the ablation benches confirm).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace

from repro.errors import InvalidParameterError

__all__ = ["MachineParams"]


@dataclass(frozen=True)
class MachineParams:
    """Geometry and timing of the simulated multicore.

    Attributes
    ----------
    n_cores:
        Number of cores (= hardware threads; the paper sweeps 1..18).
    line_words:
        Words per cache line (addresses are word-granular; 8 words =
        64 B lines at 8-byte words).
    l1_sets / l1_assoc:
        Private L1 geometry (default 64 sets x 8 ways = 512 lines =
        32 KiB of 64 B lines).
    l1_hit / dir_lookup / mem_latency / hop:
        Core cycles for an L1 hit, a directory/L2 access, a DRAM fill
        (first touch of a line), and one network traversal
        (request, probe, or response each pay one hop).
    commit_cycles / abort_cycles:
        Fixed cost of a commit (clearing tx bits) and of an abort
        (invalidate + restore checkpoint).
    max_retries:
        HTM attempts per operation before escalating to the workload's
        lock-free fallback path.
    retry_backoff_base / retry_backoff_cap:
        Randomized exponential backoff between HTM retries
        (``min(base * 2^attempt, cap)`` cycles, jittered x[0.5, 1.5)).
        Real requestor-wins HTMs need this to avoid mutual-kill
        livelock; disabled when ``retry_backoff_base == 0``.
    abort_overhead:
        The fixed "cleanup" component of the conflict-policy abort-cost
        estimate ``B = tx_age + abort_overhead`` (paper, footnote 1).
    clock_ghz:
        Only used to convert cycles to ops/second for Figure 3's y-axis.
    """

    n_cores: int = 8
    line_words: int = 8
    l1_sets: int = 64
    l1_assoc: int = 8
    l1_hit: int = 1
    dir_lookup: int = 12
    mem_latency: int = 80
    hop: int = 4
    commit_cycles: int = 6
    abort_cycles: int = 60
    max_retries: int = 8
    retry_backoff_base: int = 16
    retry_backoff_cap: int = 2048
    abort_overhead: int = 100
    clock_ghz: float = 1.0

    def __post_init__(self) -> None:
        positive = (
            "n_cores line_words l1_sets l1_assoc l1_hit dir_lookup "
            "mem_latency commit_cycles abort_cycles max_retries "
            "abort_overhead"
        ).split()
        for name in positive:
            if getattr(self, name) < 1:
                raise InvalidParameterError(f"{name} must be >= 1")
        for name in ("hop", "retry_backoff_base", "retry_backoff_cap"):
            if getattr(self, name) < 0:
                raise InvalidParameterError(f"{name} must be >= 0")
        if self.clock_ghz <= 0:
            raise InvalidParameterError("clock_ghz must be positive")

    @property
    def l1_lines(self) -> int:
        return self.l1_sets * self.l1_assoc

    def line_of(self, addr: int) -> int:
        """Word address -> cache-line index."""
        if addr < 0:
            raise InvalidParameterError(f"negative address {addr}")
        return addr // self.line_words

    def with_cores(self, n_cores: int) -> "MachineParams":
        """Copy with a different core count (thread sweeps)."""
        return replace(self, n_cores=n_cores)

    def with_updates(self, **updates) -> "MachineParams":
        """Validated copy with arbitrary field overrides (robustness
        sweeps perturb several fields at once; ``replace`` re-runs
        ``__post_init__`` so invalid combinations still raise)."""
        unknown = set(updates) - {f.name for f in fields(self)}
        if unknown:
            raise InvalidParameterError(
                f"unknown MachineParams fields: {sorted(unknown)}"
            )
        return replace(self, **updates)
