"""Online transaction-length profiling (extension).

Section 5.2 motivates the mean-constrained policies with "a profiler
which records the empirical mean over all successful executions of a
transaction, and uses this information when deciding the grace period
length".  The paper's experiments hand that mean to the policies
offline; this module closes the loop *online*: a per-machine profiler
accumulates committed-transaction durations, and
:class:`AdaptiveDelay` feeds the running mean into the mean-constrained
optimal policy — no offline tuning step, no workload knowledge.

Until enough commits have been observed (``warmup``), the policy falls
back to the unconstrained uniform optimum, so cold-start behaviour is
exactly DELAY_RAND.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.requestor_wins import optimal_requestor_wins
from repro.errors import InvalidParameterError
from repro.htm.conflict_policy import ConflictContext, CyclePolicy
from repro.obs.metrics import get_registry
from repro.sim.stats import Welford

__all__ = ["CommitProfiler", "AdaptiveDelay"]


class CommitProfiler:
    """Shared accumulator of committed-transaction durations.

    One instance per machine; every core's :class:`AdaptiveDelay`
    observes commits into it and reads the running mean.  The profiler
    tracks full execution-to-commit durations; the theory's µ is the
    mean *remaining* time at conflict, which for a conflict striking at
    a uniformly random point is half the mean duration — hence the 0.5
    factor in :meth:`mu_estimate` (the same convention as the synthetic
    harness's ``mu_source`` discussion).
    """

    def __init__(self, *, remaining_fraction: float = 0.5) -> None:
        if not 0.0 < remaining_fraction <= 1.0:
            raise InvalidParameterError(
                f"remaining_fraction must be in (0, 1], got {remaining_fraction}"
            )
        self.durations = Welford()
        self.remaining_fraction = remaining_fraction

    def observe_commit(self, duration_cycles: float) -> None:
        if duration_cycles < 0:
            raise InvalidParameterError(
                f"duration must be >= 0, got {duration_cycles}"
            )
        self.durations.add(float(duration_cycles))

    @property
    def n(self) -> int:
        return self.durations.n

    def record(self, event) -> None:
        """Trace-bus sink: observe commit events straight off the bus.

        Lets a profiler be fed by ``bus.subscribe(profiler)`` instead of
        the machine's ``commit_observers`` hook — same event schema as
        every other sink (docs/OBSERVABILITY.md).  Note bus events carry
        the *true* duration; estimator-noise faults only perturb the
        commit-observer path.
        """
        if event.kind == "commit" and "duration" in event.detail:
            self.observe_commit(float(event.detail["duration"]))

    def mu_estimate(self) -> float:
        """Estimated mean remaining time at conflict (NaN until data)."""
        if self.durations.n == 0:
            return math.nan
        return self.durations.mean * self.remaining_fraction


class AdaptiveDelay(CyclePolicy):
    """Mean-constrained optimal delays with a *live* profiled mean.

    Parameters
    ----------
    profiler:
        Shared :class:`CommitProfiler` (one per machine).
    warmup:
        Committed transactions required before trusting the estimate.
    refresh:
        Rebuild the cached policy after this many new commits (the mean
        drifts as the workload warms up).
    """

    name = "DELAY_ADAPTIVE"

    def __init__(
        self,
        profiler: CommitProfiler,
        *,
        warmup: int = 32,
        refresh: int = 256,
    ) -> None:
        if warmup < 1 or refresh < 1:
            raise InvalidParameterError("warmup and refresh must be >= 1")
        self.profiler = profiler
        self.warmup = warmup
        self.refresh = refresh
        self._cache: dict[tuple[int, int], object] = {}
        self._cache_n = -1

    def _bucket(self, B: int) -> int:
        if B < 1:
            return 1
        return int(round(1.25 ** round(math.log(B, 1.25))))

    def decide(self, ctx: ConflictContext, rng: np.random.Generator) -> int:
        mu = None
        if self.profiler.n >= self.warmup:
            mu = self.profiler.mu_estimate()
        # invalidate the policy cache when enough new data arrived
        if (
            self._cache_n >= 0
            and self.profiler.n - self._cache_n >= self.refresh
        ):
            self._cache.clear()
            self._cache_n = self.profiler.n
        elif self._cache_n < 0:
            self._cache_n = self.profiler.n
        B = self._bucket(max(ctx.abort_cost, 1))
        key = (B, ctx.chain_k)
        policy = self._cache.get(key)
        if policy is None:
            get_registry().counter("policy_builds").inc()
            policy = optimal_requestor_wins(float(B), ctx.chain_k, mu)
            self._cache[key] = policy
        return int(policy.sample(rng))
