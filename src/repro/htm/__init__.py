"""Discrete-event hardware-transactional-memory simulator.

This package is the repository's substitute for the paper's Graphite
setup (Section 8.2): a tiled multicore with private L1 caches and a
shared L2 whose full-map MSI **directory** detects conflicts, extended
with transactional bits per cache line and a requestor-wins HTM whose
receivers may *delay* conflicting coherence responses by a grace period
chosen by a pluggable conflict policy.

Fidelity notes (also in DESIGN.md): in-order blocking cores (one
outstanding miss), MSI rather than MESI, fixed-latency interconnect (no
mesh contention), value storage centralized at the directory with
per-transaction write buffers (lazy versioning, eager conflict
detection).  These match the abstraction level of the paper's
Algorithm 1; the published comparisons are between conflict policies on
one substrate, which is preserved.
"""

from __future__ import annotations

from repro.htm.params import MachineParams
from repro.htm.conflict_policy import (
    ConflictContext,
    GreedyCM,
    HybridDelay,
    RequestorAbortsDelay,
    CyclePolicy,
    DetDelay,
    NoDelay,
    RandDelay,
    RRWMeanDelay,
    TunedDelay,
    policy_from_name,
)
from repro.htm.machine import Machine, MachineStats

__all__ = [
    "MachineParams",
    "Machine",
    "MachineStats",
    "ConflictContext",
    "CyclePolicy",
    "NoDelay",
    "TunedDelay",
    "DetDelay",
    "RandDelay",
    "RRWMeanDelay",
    "RequestorAbortsDelay",
    "HybridDelay",
    "GreedyCM",
    "policy_from_name",
]
