"""Per-core memory system: private L1 + the HTM controller.

This is where the paper's mechanism lives.  A coherence probe that
conflicts with the local transaction (it targets a line with a
transactional bit, per Algorithm 1) is **not** answered immediately:
the controller consults its :class:`~repro.htm.conflict_policy.CyclePolicy`
for a grace period and holds the probe.  If the transaction commits
within the grace period the probe is answered on commit (everybody
wins); when the grace timer fires first, the transaction aborts —
requestor wins — and the probe is answered then.

Value semantics: one authoritative word store lives in the
:class:`~repro.htm.machine.Machine`; transactional writes go to a
per-transaction write buffer applied atomically at commit (lazy
versioning).  Coherence (M-state exclusivity plus conflict probes on
transactional bits) guarantees that this simple store is linearizable
for committed transactions — the integration tests check it end to end.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.errors import ProtocolError, SimulationError
from repro.htm.cache import L1Cache, LineState
from repro.htm.conflict_policy import ConflictContext, CyclePolicy
from repro.htm.params import MachineParams

if TYPE_CHECKING:  # pragma: no cover
    from repro.htm.machine import Machine

__all__ = ["AbortReason", "CoreMemSystem", "PendingProbe"]

#: Power-of-two bucket edges for the grace-delay histogram.  Fixed at
#: import time so every run (and every parallel worker) buckets
#: identically — a requirement of the snapshot-merge determinism
#: contract (docs/OBSERVABILITY.md).  Zero delays land in underflow.
GRACE_DELAY_EDGES = tuple(float(2**i) for i in range(16))


class AbortReason(enum.Enum):
    """Why a transaction died (stats keys)."""

    CONFLICT_IMMEDIATE = "conflict_immediate"  # policy chose 0 delay
    CONFLICT_TIMEOUT = "conflict_timeout"      # grace period expired
    CAPACITY = "capacity"                      # tx line evicted
    CYCLE = "cycle"                            # waits-for cycle broken
    EXPLICIT = "explicit"                      # workload self-abort
    NACKED = "nacked"                          # requestor-aborts resolution
    SPURIOUS = "spurious"                      # injected machine fault


@dataclass(slots=True)
class PendingProbe:
    """A conflicting probe being delayed by the grace period."""

    line: int
    exclusive: bool
    requestor: int
    ack: Callable[[], None]


class CoreMemSystem:
    """L1 cache + transactional state machine for one core."""

    def __init__(
        self,
        core_id: int,
        machine: "Machine",
        policy: CyclePolicy,
        rng: np.random.Generator,
    ) -> None:
        self.core_id = core_id
        self.machine = machine
        self.sim = machine.sim
        self.params: MachineParams = machine.params
        self.policy = policy
        self.rng = rng
        self.cache = L1Cache(self.params)

        # transactional state
        self.tx_active = False
        self.tx_start = 0.0
        self.tx_epoch = 0
        self.write_buffer: dict[int, int] = {}
        self.pending_probes: list[PendingProbe] = []
        self._grace_event = None
        self._grace_mode = "requestor_wins"
        self._abort_cb: Callable[[AbortReason], None] | None = None

        # stats
        self.stats = machine.stats.core(core_id)
        # metric handles, bound once: registry.reset() zeroes in place,
        # so these survive the warmup counter reset
        metrics = machine.metrics
        self._m_txns_started = metrics.counter("txns_started")
        self._m_commits = metrics.counter("commits")
        self._m_aborts_rw = metrics.counter("aborts_rw")
        self._m_aborts_ra = metrics.counter("aborts_ra")
        self._m_conflicts = metrics.counter("conflicts")
        self._m_grace_granted = metrics.counter("grace_granted")
        self._m_grace_expired = metrics.counter("grace_expired")
        self._m_grace_delay = metrics.histogram(
            "grace_delay_cycles", edges=GRACE_DELAY_EDGES
        )

    # ------------------------------------------------------------------
    # Transaction lifecycle (driven by the core)
    # ------------------------------------------------------------------
    def begin_tx(self, abort_cb: Callable[[AbortReason], None]) -> int:
        """Open a transaction; returns its epoch token."""
        if self.tx_active:
            raise ProtocolError(f"core {self.core_id}: nested begin_tx")
        self.tx_active = True
        self.tx_start = self.sim.now
        self.tx_epoch += 1
        self.write_buffer = {}
        self._abort_cb = abort_cb
        self.stats.tx_started += 1
        self._m_txns_started.inc()
        self.machine.emit("txn_begin", self.core_id)
        self.machine.faults.on_begin_tx(self)
        return self.tx_epoch

    def next_commit_addr(self) -> int | None:
        """Commit phase, lazy validation: the next write-set address
        whose line still needs exclusive ownership (None when the write
        set is fully owned and :meth:`finalize_commit` may run).

        The core acquires these one at a time with ``AcquireX``; each
        acquisition probes readers/writers elsewhere, which is exactly
        where requestor-wins conflicts — and the grace-period decision
        on the other side — happen in the paper's implementation.
        """
        if not self.tx_active:
            raise ProtocolError(f"core {self.core_id}: commit without tx")
        # Reverse program order: the last-written line is typically the
        # hottest (a data structure's anchor pointer), and acquiring it
        # first maximizes the owned-but-uncommitted window in which a
        # grace period can actually save the transaction (Figure 1's
        # "T1 holds A exclusive and is acquiring B" scenario).
        for addr in reversed(list(self.write_buffer)):
            line = self.params.line_of(addr)
            entry = self.cache.lookup(line)
            if entry is None:
                raise ProtocolError(
                    f"core {self.core_id}: write-set line {line} not "
                    f"resident at commit (tx should have aborted)"
                )
            if entry.state is not LineState.MODIFIED:
                return addr
        return None

    def finalize_commit(self, done: Callable[[], None]) -> None:
        """Apply the write buffer (the commit's atomicity point), clear
        tx bits, answer delayed probes, call ``done`` after the commit
        latency."""
        if not self.tx_active:
            raise ProtocolError(f"core {self.core_id}: commit without tx")
        for addr in self.write_buffer:
            line = self.params.line_of(addr)
            entry = self.cache.lookup(line)
            if entry is None or entry.state is not LineState.MODIFIED:
                raise ProtocolError(
                    f"core {self.core_id}: finalize_commit without owning "
                    f"line {line}"
                )
        for addr, value in self.write_buffer.items():
            self.machine.memory[addr] = value
        self.write_buffer = {}
        self.cache.clear_tx_bits()
        self.tx_active = False
        self._abort_cb = None
        self._cancel_grace()
        self.machine.faults.on_end_tx(self)
        self.stats.tx_committed += 1
        self._m_commits.inc()
        duration = self.sim.now - self.tx_start
        if self.machine.commit_observers:
            # µ-estimator noise perturbs what the online profiler sees
            # (the trace below keeps the true duration)
            observed = self.machine.faults.noisy_commit_duration(duration)
            for observer in self.machine.commit_observers:
                observer(observed)
        self.machine.emit("commit", self.core_id, duration=duration)
        self._release_probes(aborting=False)
        self.sim.after(self.params.commit_cycles, done, label="commit")

    def abort_tx(self, reason: AbortReason) -> None:
        """Abort: discard the write buffer, invalidate transactional
        lines, answer delayed probes, notify the core."""
        if not self.tx_active:
            return  # already dead (e.g. cycle abort raced the timer)
        self.write_buffer = {}
        dropped = self.cache.invalidate_tx_lines()
        for line in dropped:
            self.machine.directory.drop_sharer(self.core_id, line)
        self.tx_active = False
        self._cancel_grace()
        self.machine.faults.on_end_tx(self)
        self.stats.tx_aborted += 1
        self.stats.abort_reasons[reason.value] = (
            self.stats.abort_reasons.get(reason.value, 0) + 1
        )
        # NACKED is the one requestor-aborts death; everything else
        # (timeouts, capacity, cycles, spurious, ...) counts as the
        # requestor-wins family for the lifecycle invariant
        # aborts_rw + aborts_ra + commits == txns_started
        if reason is AbortReason.NACKED:
            self._m_aborts_ra.inc()
        else:
            self._m_aborts_rw.inc()
        self.machine.emit(
            "abort", self.core_id, reason=reason.value, age=self.tx_age()
        )
        self._release_probes(aborting=True)
        cb = self._abort_cb
        self._abort_cb = None
        if cb is not None:
            cb(reason)

    def tx_age(self) -> int:
        return int(self.sim.now - self.tx_start)

    # ------------------------------------------------------------------
    # Memory accesses (driven by the core)
    # ------------------------------------------------------------------
    def access(
        self,
        addr: int,
        *,
        write: bool,
        tx: bool,
        value: int | None = None,
        cas: tuple[int, int] | None = None,
        acquire: bool = False,
        done: Callable[[object], None],
    ) -> bool:
        """Perform one word access; ``done(result)`` fires when complete.

        ``result`` is the read value for loads, ``None`` for stores, and
        ``(success, old_value)`` for CAS.  A transactional access whose
        transaction dies mid-miss still completes the fill (harmlessly),
        but the core's epoch guard discards the result.

        Lazy validation: a transactional *store* only fetches the line
        in S and buffers the value (tx-write bit on the S line tracks
        write-set membership); exclusive ownership is acquired at commit
        via ``acquire=True`` accesses.  Non-transactional stores and CAS
        acquire M immediately.

        Returns True when a completion will be delivered; False when the
        access died immediately with a capacity abort (``done`` will
        never fire).
        """
        if tx and not self.tx_active:
            raise ProtocolError(f"core {self.core_id}: tx access outside tx")
        if cas is not None and (tx or write):
            raise ProtocolError("CAS is its own access kind (non-tx)")
        if acquire and not self.tx_active:
            raise ProtocolError("acquire is a commit-phase (tx) access")
        line = self.params.line_of(addr)
        exclusive = acquire or cas is not None or (write and not tx)
        epoch = self.tx_epoch

        if tx and self._doomed_by_pending_probe(line, exclusive, write):
            # We are delaying a probe on this very line; the prober's
            # request occupies the line's directory slot until we answer,
            # so a request of our own would deadlock behind it (and a
            # buffered write on a non-owned line could never be acquired
            # at commit).  The conflict is now known lost — answer it by
            # aborting (dynamic wedge; see also _is_wedged).
            self.stats.abort_reasons["wedged"] = (
                self.stats.abort_reasons.get("wedged", 0) + 1
            )
            self.abort_tx(AbortReason.CONFLICT_IMMEDIATE)
            return False

        if self.cache.has_state(line, exclusive=exclusive):
            entry = self.cache.lookup(line)
            assert entry is not None
            self.cache.touch(entry)
            if tx:
                self.cache.mark_tx(line, write=write or acquire)
            self.stats.l1_hits += 1
            if acquire:
                result: object = None
            else:
                result = self._apply_effect(addr, write, tx, value, cas, epoch)
            self.sim.after(self.params.l1_hit, done, result, label="l1-hit")
            return True

        # Miss path: make room, then ask the directory.
        self.stats.l1_misses += 1
        if not self._make_room(line, tx):
            return False  # capacity abort already handled; access is moot

        def on_grant(
            first_touch: bool, latency: int, _line=line, _epoch=epoch
        ) -> None:
            # Install the line and apply the value effect at the grant
            # instant — the coherence serialization point — and charge
            # the data-return latency to this access's completion only.
            state = LineState.MODIFIED if exclusive else LineState.SHARED
            if self.cache.victim_for(_line) is not None:
                # defensive re-check; with one outstanding access per
                # core the reservation from _make_room still stands
                victim = self._pick_victim(_line, protect_tx=self.tx_active)
                if victim is not None:
                    self._evict(victim)
            self.cache.fill(_line, state)
            if tx and self.tx_active and self.tx_epoch == _epoch:
                self.cache.mark_tx(_line, write=write or acquire)
            if acquire:
                result: object = None
            else:
                result = self._apply_effect(addr, write, tx, value, cas, _epoch)
            self.sim.after(
                latency + self.params.l1_hit, done, result, label="fill-done"
            )

        self.machine.directory.request(self.core_id, line, exclusive, on_grant)
        return True

    def _apply_effect(
        self,
        addr: int,
        write: bool,
        tx: bool,
        value: int | None,
        cas: tuple[int, int] | None,
        epoch: int,
    ) -> object:
        """Value semantics, applied at permission time (atomicity point)."""
        memory = self.machine.memory
        if cas is not None:
            expected, new = cas
            old = memory.get(addr, 0)
            if old == expected:
                memory[addr] = new
                return (True, old)
            return (False, old)
        if write:
            if value is None:
                raise SimulationError("write without a value")
            if tx:
                if self.tx_active and self.tx_epoch == epoch:
                    self.write_buffer[addr] = value
                # else: transaction died mid-miss; drop silently
            else:
                memory[addr] = value
            return None
        # read: own speculative value first
        if tx and self.tx_active and self.tx_epoch == epoch:
            if addr in self.write_buffer:
                return self.write_buffer[addr]
        return memory.get(addr, 0)

    # -- eviction -----------------------------------------------------------
    def _pick_victim(self, line: int, protect_tx: bool):
        bucket_victim = self.cache.victim_for(line)
        if bucket_victim is None:
            return None
        if not protect_tx or not bucket_victim.transactional:
            return bucket_victim
        # prefer any non-transactional way
        candidates = [
            e
            for e in self.cache._set_of(line).values()
            if not e.transactional
        ]
        if candidates:
            return min(candidates, key=lambda e: e.lru)
        return bucket_victim  # every way is transactional

    def _make_room(self, line: int, tx: bool) -> bool:
        """Ensure a fill of ``line`` can succeed.  Returns False when the
        set is wedged with transactional lines and the transaction had to
        capacity-abort (the access dies with it)."""
        victim = self._pick_victim(line, protect_tx=True)
        if victim is None:
            return True
        if victim.transactional:
            # Algorithm 1 line 4: evicting a transactional line aborts.
            self.abort_tx(AbortReason.CAPACITY)
            return False
        self._evict(victim)
        return True

    def _evict(self, entry) -> None:
        if entry.state is LineState.MODIFIED:
            self.machine.directory.writeback(self.core_id, entry.line)
            self.stats.writebacks += 1
        self.cache.evict(entry.line)

    # ------------------------------------------------------------------
    # Probes (driven by the directory)
    # ------------------------------------------------------------------
    def handle_probe(
        self,
        line: int,
        exclusive: bool,
        requestor: int,
        ack: Callable[[], None],
    ) -> None:
        """Invalidate/downgrade ``line`` — or delay, if it conflicts with
        the running transaction."""
        entry = self.cache.lookup(line)
        if entry is None:
            # silently evicted (S) or dropped by an abort; nothing to do
            self.sim.after(1, ack, label="probe-ack")
            return
        conflicts = self.tx_active and (
            entry.tx_write or (exclusive and entry.tx_read)
        )
        if not conflicts:
            self._apply_probe(line, exclusive)
            self.sim.after(1, ack, label="probe-ack")
            return

        # --- the transactional conflict problem, live ---
        self.stats.conflicts_received += 1
        self._m_conflicts.inc()
        if self.machine.wedge_aware and self._is_wedged(line, entry):
            # The contested line is in our write set but not yet owned:
            # we cannot acquire it while the requestor's GETX is in
            # service, so our remaining time is structurally infinite —
            # the theory's D -> inf case, where OPT aborts immediately.
            self.stats.abort_reasons["wedged"] = (
                self.stats.abort_reasons.get("wedged", 0) + 1
            )
            self.pending_probes.append(
                PendingProbe(line, exclusive, requestor, ack)
            )
            self.machine.note_wait(requestor, self.core_id)
            self.abort_tx(AbortReason.CONFLICT_IMMEDIATE)
            return
        self.pending_probes.append(
            PendingProbe(line, exclusive, requestor, ack)
        )
        self.machine.note_wait(requestor, self.core_id)
        if self._grace_event is None:
            k = self.machine.chain_size(self.core_id)
            req_mem = self.machine.mems[requestor]
            # estimator-noise faults perturb the (age, k) the policy
            # sees; exact pass-through without a fault plan
            age_hat, k_hat = self.machine.faults.noisy_context(
                self.tx_age(), max(k, 2)
            )
            ctx = ConflictContext(
                tx_age=age_hat,
                chain_k=max(k_hat, 2),
                params=self.params,
                requestor_age=req_mem.tx_age() if req_mem.tx_active else None,
            )
            delay = int(self.policy.decide(ctx, self.rng))
            self.stats.grace_delay_stats.add(float(delay))
            self._m_grace_delay.observe(float(delay))
            # which side dies when the grace expires: hybrid policies
            # may resolve requestor-aborts for small chains
            mode = getattr(self.policy, "resolution", "requestor_wins")
            if callable(mode):
                mode = mode(ctx)
            self._grace_mode = mode
            self.machine.emit(
                "conflict",
                self.core_id,
                line=line,
                requestor=requestor,
                k=ctx.chain_k,
                delay=delay,
                mode=mode,
            )
            if delay <= 0:
                self._resolve_conflict(mode)
                return
            self._m_grace_granted.inc()
            self.machine.emit(
                "grace_granted", self.core_id, delay=delay, mode=mode
            )
            self._grace_event = self.sim.after(
                delay, self._grace_expired, self.tx_epoch, label="grace"
            )
        self.machine.check_cycle(requestor)

    def _doomed_by_pending_probe(
        self, line: int, exclusive: bool, write: bool
    ) -> bool:
        """Dynamic wedge check at access time.

        True when we hold a *delayed* probe on ``line`` and either (a)
        this access needs a coherence request of its own (it would queue
        behind the prober's in-service request — deadlock until the
        grace timer), or (b) it is a transactional store to a line we do
        not own exclusively (commit would need such a request later).
        """
        if not any(p.line == line for p in self.pending_probes):
            return False
        entry = self.cache.lookup(line)
        owns_m = entry is not None and entry.state is LineState.MODIFIED
        if not self.cache.has_state(line, exclusive=exclusive):
            return True
        return write and not owns_m

    def _is_wedged(self, line: int, entry) -> bool:
        """True when the probed line is in our write set but not yet
        exclusively owned — we could never commit while this probe's
        request occupies the line's directory slot."""
        if entry.state is LineState.MODIFIED:
            return False
        return any(
            self.params.line_of(addr) == line for addr in self.write_buffer
        )

    def _grace_expired(self, epoch: int) -> None:
        self._grace_event = None
        if self.tx_active and self.tx_epoch == epoch:
            # counted only when the timer actually resolves a live
            # transaction — commits/aborts cancel their timers, which is
            # why grace_granted >= grace_expired is an invariant
            self._m_grace_expired.inc()
            self.machine.emit("grace_expired", self.core_id)
            self._resolve_conflict(self._grace_mode, timeout=True)

    def _resolve_conflict(self, mode: str, *, timeout: bool = False) -> None:
        """Grace over: enforce the resolution strategy.

        ``requestor_wins`` — abort this (receiver) transaction, which
        answers the pending probes.

        ``requestor_aborts`` — abort the *transactional requestors* of
        every pending probe (NACK); the receiver keeps running and the
        probes stay pending until it commits or dies.  A
        non-transactional requestor (a CAS or a fallback store) cannot
        be aborted and simply continues to wait — the only sound
        semantics for non-speculative requests, and the reason real
        requestor-aborts HTMs still bound the wait (our receiver's
        commit bounds it here).
        """
        if mode == "requestor_aborts":
            nacked = 0
            for probe in list(self.pending_probes):
                mem = self.machine.mems[probe.requestor]
                if mem.tx_active:
                    mem.abort_tx(AbortReason.NACKED)
                    nacked += 1
            self.stats.nacks_sent += nacked
            # The receiver lives on; probes are answered at its commit or
            # abort.  The NACKed requests still occupy their lines'
            # directory slots until then, so two RA receivers can block
            # each other through lines neither is probed on — a deadlock
            # no waits-for edge sees.  Real requestor-aborts designs
            # bound the NACK window for exactly this reason; we arm a
            # requestor-wins *backstop* timer: one more abort-cost's
            # worth of cycles to commit, then the receiver yields.
            backstop = self.tx_age() + self.params.abort_overhead
            self._grace_mode = "requestor_wins"
            self._m_grace_granted.inc()
            self.machine.emit(
                "grace_granted",
                self.core_id,
                delay=max(backstop, 1),
                mode="requestor_wins",
                backstop=True,
            )
            self._grace_event = self.sim.after(
                max(backstop, 1),
                self._grace_expired,
                self.tx_epoch,
                label="ra-backstop",
            )
            return
        self.abort_tx(
            AbortReason.CONFLICT_TIMEOUT
            if timeout
            else AbortReason.CONFLICT_IMMEDIATE
        )

    def _apply_probe(self, line: int, exclusive: bool) -> None:
        entry = self.cache.lookup(line)
        if entry is None:
            return
        if exclusive:
            self.cache.invalidate(line)
        elif entry.state is LineState.MODIFIED:
            self.cache.downgrade(line)
        else:
            raise ProtocolError(
                f"core {self.core_id}: GETS probe for line {line} held in S"
            )

    def _release_probes(self, *, aborting: bool) -> None:
        """Answer every delayed probe (on commit or abort)."""
        probes, self.pending_probes = self.pending_probes, []
        for probe in probes:
            # on abort the tx lines are already gone; on commit the line
            # survives and must be downgraded/invalidated now
            if not aborting:
                self._apply_probe_post_commit(probe)
            self.machine.clear_wait(probe.requestor, self.core_id)
            self.sim.after(1, probe.ack, label="probe-release")

    def _apply_probe_post_commit(self, probe: PendingProbe) -> None:
        entry = self.cache.lookup(probe.line)
        if entry is None:
            return
        if probe.exclusive:
            self.cache.invalidate(probe.line)
            self.machine.directory.drop_sharer(self.core_id, probe.line)
        elif entry.state is LineState.MODIFIED:
            self.cache.downgrade(probe.line)

    def _cancel_grace(self) -> None:
        if self._grace_event is not None:
            self.sim.cancel(self._grace_event)
            self._grace_event = None
