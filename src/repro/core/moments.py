"""Moment-constrained adversaries beyond the mean (extension).

The paper (following Khanafer et al.) analyzes adversaries constrained
by their **mean**; Khanafer et al. also treat the **variance**.  This
module evaluates any policy against adversaries constrained by an
arbitrary set of moment conditions, numerically: the best adversary

    max_pi  E_pi[ ratio(D) ]
    s.t.    E_pi[ D^j ] = m_j   for each constrained moment j
            pi a distribution on the adversary grid

is a finite linear program whose optimum is attained on a support of at
most ``len(constraints) + 1`` points; we solve it with
``scipy.optimize.linprog`` (HiGHS).

With only a mean constraint this reproduces
:func:`repro.core.verify.constrained_competitive_ratio` (the concave-
envelope shortcut); adding a variance constraint tightens the adversary
further — useful to quantify how much a profiler that also tracks the
second moment could gain, the natural next step the paper's
"Extensions" paragraph points at.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy.optimize import linprog

from repro.core.model import ConflictModel
from repro.core.policy import DelayPolicy
from repro.core.verify import _adversary_grid, expected_cost_curve
from repro.errors import InvalidParameterError

__all__ = ["MomentConstraint", "moment_constrained_ratio"]


@dataclass(frozen=True)
class MomentConstraint:
    """``E[D^order] == value`` (order 1 = mean, 2 = second moment)."""

    order: int
    value: float

    def __post_init__(self) -> None:
        if self.order < 1:
            raise InvalidParameterError(f"moment order must be >= 1, got {self.order}")
        if self.value <= 0 or not math.isfinite(self.value):
            raise InvalidParameterError(
                f"moment value must be finite and positive, got {self.value}"
            )


def moment_constrained_ratio(
    policy: DelayPolicy,
    model: ConflictModel,
    constraints: list[MomentConstraint],
    *,
    grid: int = 1024,
    d_max_factor: float = 4.0,
) -> float:
    """Best adversary ratio subject to the given moment constraints.

    Returns ``nan`` when the constraints are infeasible on the grid
    (e.g. a variance impossible for the given mean and support).
    """
    if not constraints:
        raise InvalidParameterError("need at least one moment constraint")
    orders = [c.order for c in constraints]
    if len(set(orders)) != len(orders):
        raise InvalidParameterError("duplicate moment orders")

    d = _adversary_grid(policy, model, grid, d_max_factor)
    ratios = expected_cost_curve(policy, model, d) / model.opt_vec(d)

    # maximize sum_i pi_i * ratio_i  ==  minimize -ratio . pi
    a_eq = [np.ones_like(d)]
    b_eq = [1.0]
    for c in constraints:
        a_eq.append(d**c.order)
        b_eq.append(c.value)
    result = linprog(
        c=-ratios,
        A_eq=np.vstack(a_eq),
        b_eq=np.asarray(b_eq),
        bounds=(0.0, 1.0),
        method="highs",
    )
    if not result.success:
        return math.nan
    return float(-result.fun)


def mean_variance_ratio(
    policy: DelayPolicy,
    model: ConflictModel,
    mu: float,
    variance: float,
    **kwargs,
) -> float:
    """Convenience wrapper: adversaries with mean ``mu`` and variance
    ``variance`` (i.e. ``E[D^2] = variance + mu^2``)."""
    if variance < 0:
        raise InvalidParameterError(f"variance must be >= 0, got {variance}")
    return moment_constrained_ratio(
        policy,
        model,
        [
            MomentConstraint(1, mu),
            MomentConstraint(2, variance + mu * mu),
        ],
        **kwargs,
    )
