"""Delay-policy interface and the trivial deterministic policies.

A :class:`DelayPolicy` answers one question at conflict time: *for how
long do we delay the abort?*  Policies may be deterministic (a point
mass) or randomized (a PDF over the support).  Decisions are local,
immediate, and unchangeable — once ``x`` is drawn, the conflict runs its
course (the paper's HTM setting, Section 1 "Implications").

The interface is deliberately distribution-like (``pdf``/``cdf``/
``sample``) so that the numeric verification machinery in
:mod:`repro.core.verify` can integrate any policy against the cost model
without knowing its closed form.
"""

from __future__ import annotations

import abc
import math
from typing import TYPE_CHECKING

import numpy as np

from repro.errors import InvalidParameterError
from repro.rngutil import ensure_rng

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.model import ConflictModel

__all__ = [
    "DelayPolicy",
    "DeterministicDelayPolicy",
    "FixedDelayPolicy",
    "ImmediateAbortPolicy",
    "NeverAbortPolicy",
]


class DelayPolicy(abc.ABC):
    """Abstract base class for grace-period (abort-delay) policies.

    Subclasses define a probability distribution over the delay
    ``x >= 0``.  Deterministic policies are represented as point masses
    (they override :meth:`is_deterministic`).

    Attributes
    ----------
    name:
        Short identifier used in experiment tables (e.g. ``"RRW(mu)"``).
    """

    #: Display name; subclasses override.
    name: str = "policy"

    # -- sampling -------------------------------------------------------
    @abc.abstractmethod
    def sample(self, rng: np.random.Generator | int | None = None) -> float:
        """Draw one delay."""

    def sample_many(
        self, n: int, rng: np.random.Generator | int | None = None
    ) -> np.ndarray:
        """Draw ``n`` delays (vectorized where the subclass supports it).

        The base implementation loops over :meth:`sample`; continuous
        policies override with a single vectorized draw.
        """
        gen = ensure_rng(rng)
        return np.array([self.sample(gen) for _ in range(n)], dtype=float)

    # -- distribution ---------------------------------------------------
    @property
    @abc.abstractmethod
    def support(self) -> tuple[float, float]:
        """``(lo, hi)`` interval outside which the delay has zero mass."""

    @abc.abstractmethod
    def cdf(self, x: float) -> float:
        """``P(delay <= x)``."""

    def pdf(self, x: float) -> float:
        """Probability density at ``x`` (continuous policies only).

        Point-mass policies raise :class:`NotImplementedError`; callers
        that need full generality should use :meth:`cdf` or
        :meth:`expected_conflict_cost` hooks instead.
        """
        raise NotImplementedError(f"{type(self).__name__} has no density")

    def is_deterministic(self) -> bool:
        """Whether the policy is a point mass."""
        return False

    def expected_delay(self) -> float:
        """``E[delay]`` — integral of the survival function over the support."""
        lo, hi = self.support
        if hi <= lo:
            return lo
        xs = np.linspace(lo, hi, 4097)
        surv = 1.0 - np.array([self.cdf(x) for x in xs])
        return lo + float(np.trapezoid(surv, xs))

    # -- bookkeeping ----------------------------------------------------
    def describe(self) -> str:
        """One-line human-readable summary."""
        lo, hi = self.support
        return f"{self.name}: delays in [{lo:g}, {hi:g}]"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name!r}>"

    # -- validation helper for subclasses -------------------------------
    @staticmethod
    def _require_positive(value: float, what: str) -> float:
        if not (isinstance(value, (int, float)) and math.isfinite(value)):
            raise InvalidParameterError(f"{what} must be finite, got {value!r}")
        if value <= 0:
            raise InvalidParameterError(f"{what} must be positive, got {value}")
        return float(value)


class DeterministicDelayPolicy(DelayPolicy):
    """Base class for point-mass (deterministic) policies."""

    def __init__(self, delay: float) -> None:
        if not (isinstance(delay, (int, float)) and math.isfinite(delay)):
            raise InvalidParameterError(f"delay must be finite, got {delay!r}")
        if delay < 0:
            raise InvalidParameterError(f"delay must be >= 0, got {delay}")
        self._delay = float(delay)

    @property
    def delay(self) -> float:
        """The fixed grace period."""
        return self._delay

    def sample(self, rng: np.random.Generator | int | None = None) -> float:
        return self._delay

    def sample_many(
        self, n: int, rng: np.random.Generator | int | None = None
    ) -> np.ndarray:
        return np.full(n, self._delay)

    @property
    def support(self) -> tuple[float, float]:
        return (self._delay, self._delay)

    def cdf(self, x: float) -> float:
        return 1.0 if x >= self._delay else 0.0

    def is_deterministic(self) -> bool:
        return True

    def expected_delay(self) -> float:
        return self._delay


class FixedDelayPolicy(DeterministicDelayPolicy):
    """Always delay by a caller-chosen constant.

    This is the paper's hand-tuned baseline (``DELAY_TUNED`` in
    Section 8.2) when the constant is set from profiled knowledge of the
    workload's transaction lengths.
    """

    def __init__(self, delay: float, name: str | None = None) -> None:
        super().__init__(delay)
        self.name = name if name is not None else f"FIXED({delay:g})"


class ImmediateAbortPolicy(DeterministicDelayPolicy):
    """Abort on conflict with no grace period (``NO_DELAY``).

    The behaviour of stock requestor-wins HTM implementations.
    """

    name = "NO_DELAY"

    def __init__(self) -> None:
        super().__init__(0.0)


class NeverAbortPolicy(DeterministicDelayPolicy):
    """Delay (essentially) forever — always let the receiver commit.

    Useful as a pessimal baseline in tests and ablations: its
    competitive ratio is unbounded as ``D`` grows, which is exactly what
    the delay cap ``B/(k-1)`` exists to prevent.
    """

    name = "NEVER_ABORT"

    def __init__(self, horizon: float = math.inf) -> None:
        # A point mass at +inf breaks numeric integration, so a finite
        # horizon may be supplied for experiments; math.inf is accepted
        # for purely analytic use.
        if horizon is math.inf:
            self._delay = math.inf
        else:
            super().__init__(horizon)

    def sample(self, rng: np.random.Generator | int | None = None) -> float:
        return self._delay

    @property
    def support(self) -> tuple[float, float]:
        return (self._delay, self._delay)

    def cdf(self, x: float) -> float:
        return 1.0 if x >= self._delay else 0.0


def clip_to_cap(policy_delay: float, model: "ConflictModel") -> float:
    """Clamp a raw delay to the model's cap ``B/(k-1)``.

    Exposed for simulation layers that combine externally-supplied delays
    (e.g. hand-tuned constants) with the cost model's structure.
    """
    return min(policy_delay, model.delay_cap)
