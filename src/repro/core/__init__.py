"""The paper's primary contribution: optimal online abort-delay policies.

This package implements Section 4 (the conflict cost model), Section 5
(optimal deterministic and randomized policies for requestor-wins),
the requestor-aborts / ski-rental reductions of Theorems 1-3, the
closed-form competitive ratios, the numeric verification machinery used
to check them, and the progress (backoff) and hybrid extensions.
"""

from __future__ import annotations

from repro.core.model import ConflictKind, ConflictModel
from repro.core.policy import (
    DelayPolicy,
    FixedDelayPolicy,
    ImmediateAbortPolicy,
    NeverAbortPolicy,
)
from repro.core.requestor_wins import (
    DeterministicRW,
    MeanConstrainedRW,
    PolynomialRW,
    UniformRW,
    optimal_requestor_wins,
)
from repro.core.requestor_aborts import (
    ChainRA,
    DeterministicRA,
    DiscreteSkiRentalRA,
    ExponentialRA,
    MeanConstrainedRA,
    optimal_requestor_aborts,
)
from repro.core.oracle import ClairvoyantPolicy
from repro.core.backoff import BackoffPolicy, progress_attempt_bound
from repro.core.hybrid import HybridResolver
from repro.core import kernels, ratios
from repro.core.validate import ValidationReport, validate_policy
from repro.core.verify import (
    competitive_ratio,
    constrained_competitive_ratio,
    expected_cost,
    simulate_costs,
)

__all__ = [
    "ConflictKind",
    "ConflictModel",
    "DelayPolicy",
    "FixedDelayPolicy",
    "ImmediateAbortPolicy",
    "NeverAbortPolicy",
    "DeterministicRW",
    "UniformRW",
    "MeanConstrainedRW",
    "PolynomialRW",
    "optimal_requestor_wins",
    "DeterministicRA",
    "ExponentialRA",
    "MeanConstrainedRA",
    "ChainRA",
    "DiscreteSkiRentalRA",
    "optimal_requestor_aborts",
    "ClairvoyantPolicy",
    "BackoffPolicy",
    "progress_attempt_bound",
    "HybridResolver",
    "ratios",
    "kernels",
    "expected_cost",
    "competitive_ratio",
    "constrained_competitive_ratio",
    "simulate_costs",
    "validate_policy",
    "ValidationReport",
]
