"""The classic ski-rental problem (Section 3.3) as a standalone model.

The requestor-aborts conflict problem reduces to ski rental, so this
module provides the textbook problem on its own terms — rent-vs-buy
with day-indexed costs — both to document the reduction and to let
tests validate our continuous policies against the discrete classic.

Mapping (Section 4.2): the conflict moment is day 1; the receiver's
remaining time ``D`` is the day the tour ends; delaying the requestor
for ``x`` steps is buying on day ``x + 1``; the abort cost ``B`` is the
ski price.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidParameterError
from repro.rngutil import ensure_rng

__all__ = [
    "SkiRental",
    "deterministic_buy_day",
    "karlin_pmf",
    "expected_cost_randomized",
    "optimal_offline_cost",
]


@dataclass(frozen=True)
class SkiRental:
    """A ski-rental instance: price ``B`` (integer days), rent cost 1/day."""

    B: int

    def __post_init__(self) -> None:
        if not isinstance(self.B, int) or isinstance(self.B, bool) or self.B < 1:
            raise InvalidParameterError(f"B must be an integer >= 1, got {self.B!r}")

    def cost(self, buy_day: int, days: int) -> int:
        """Total cost when buying at the start of ``buy_day`` and skiing
        for ``days`` days.  Renting covers days ``1 .. buy_day - 1``.

        ``buy_day > days`` means we never buy (pure rental).
        """
        if buy_day < 1 or days < 0:
            raise InvalidParameterError(
                f"need buy_day >= 1 and days >= 0, got {buy_day}, {days}"
            )
        if buy_day > days:
            return days
        return (buy_day - 1) + self.B

    def offline_cost(self, days: int) -> int:
        """``min(days, B)`` — buy on day 1 iff the tour is long."""
        if days < 0:
            raise InvalidParameterError(f"days must be >= 0, got {days}")
        return min(days, self.B)


def deterministic_buy_day(B: int) -> int:
    """The 2-competitive deterministic rule: rent ``B - 1`` days, buy on
    day ``B`` (cost at most ``2B - 1``)."""
    SkiRental(B)  # validate
    return B


def karlin_pmf(B: int) -> np.ndarray:
    """Theorem 1's optimal randomized buy-day distribution.

    ``p(i) = ((B-1)/B)^{B-i} / (B(1 - (1 - 1/B)^B))`` for days
    ``i = 1..B`` (index 0 of the returned array is day 1).
    """
    SkiRental(B)
    q = (B - 1) / B
    weights = q ** np.arange(B - 1, -1, -1, dtype=float)
    return weights / weights.sum()


def expected_cost_randomized(B: int, days: int) -> float:
    """Exact expected cost of the Theorem 1 strategy for a ``days``-day
    tour: sum over buy days of ``pmf * cost``.

    Tests check ``expected_cost_randomized(B, D) <= (e/(e-1))
    min(D, B)`` up to the discrete ratio ``1/(1-(1-1/B)^B)``.
    """
    inst = SkiRental(B)
    if days < 0:
        raise InvalidParameterError(f"days must be >= 0, got {days}")
    pmf = karlin_pmf(B)
    buy_days = np.arange(1, B + 1)
    costs = np.where(buy_days > days, float(days), buy_days - 1.0 + inst.B)
    return float(np.dot(pmf, costs))


def optimal_offline_cost(B: int, days: int) -> int:
    """``min(days, B)`` as a free function (mirrors the paper's OPT)."""
    return SkiRental(B).offline_cost(days)


def sample_buy_day(B: int, rng: np.random.Generator | int | None = None) -> int:
    """Draw a buy day from the Theorem 1 distribution (1-indexed)."""
    gen = ensure_rng(rng)
    pmf = karlin_pmf(B)
    return int(np.searchsorted(np.cumsum(pmf), gen.random(), side="right")) + 1


def discrete_competitive_ratio(B: int) -> float:
    """The exact ratio of the Theorem 1 strategy:
    ``1 / (1 - (1 - 1/B)^B)`` (-> ``e/(e-1)`` as ``B -> inf``)."""
    SkiRental(B)
    return float(1.0 / (1.0 - ((B - 1) / B) ** B)) if B > 1 else 1.0


def continuous_ratio_limit() -> float:
    """``e/(e-1)`` — the large-B limit of the randomized ratio."""
    return math.e / (math.e - 1.0)
