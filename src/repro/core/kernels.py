"""Vectorized math kernels: whole-grid evaluation of the paper's formulas.

Every closed-form quantity in the reproduction — competitive ratios,
regime thresholds, ski-rental expectations, policy densities, conflict
costs — exists as a *scalar* function in :mod:`repro.core.ski_rental`,
:mod:`repro.core.requestor_wins`, :mod:`repro.core.requestor_aborts`
and :mod:`repro.core.ratios`.  Those scalar forms stay the reference
implementations; this module provides NumPy *batch* evaluators over
array-valued ``(k, B, mu, x, D)`` grids, so the grid-shaped consumers
(the ``tab_ratios`` table, the Figure 2 / regimes theory overlays, the
bench suite) evaluate whole rows in one call instead of one scalar
point at a time.

Contract (pinned by ``tests/test_kernels_equiv.py``): every kernel
matches its scalar reference to <= 1e-12 *absolute* on every grid cell,
including edge cells (``k = 2``, ``B = 1``, degenerate ``mu``) and
empty / one-element arrays.  Broadcasting follows NumPy rules; outputs
always have the broadcast shape (0-d inputs produce 0-d arrays).

The quadrature engine (:func:`expected_cost_grid`,
:func:`competitive_ratio_grid`) batches the
:mod:`repro.core.verify` trapezoid algorithm over parameter cells: the
per-cell ``x``-grids, integrands and cumulative sums are evaluated as
one 2-D array pass, mirroring the scalar algorithm operation-for-
operation so the batched values agree with per-cell
:func:`repro.core.verify.expected_cost_curve` to the last few ulps.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.model import ConflictKind
from repro.errors import InvalidParameterError

__all__ = [
    # chain constants
    "rw_chain_ratio_R",
    "ra_chain_E",
    # closed-form competitive ratios / thresholds (Thm 1-6)
    "det_rw_ratio",
    "det_ra_ratio",
    "rand_rw_uniform_ratio",
    "rand_rw_optimal_ratio",
    "rand_ra_ratio",
    "constrained_rw_ratio",
    "constrained_ra_ratio",
    "rw_mean_regime_threshold",
    "ra_mean_regime_threshold",
    "rw_best_ratio",
    "ra_best_ratio",
    "abort_probability_rw",
    "abort_probability_ra",
    "corollary1_bound",
    # ski rental
    "ski_offline_cost",
    "ski_discrete_ratio",
    "ski_expected_cost_randomized",
    # conflict cost model
    "conflict_cost",
    "conflict_opt",
    # policy densities (mean-constrained and unconstrained families)
    "uniform_rw_pdf",
    "uniform_rw_cdf",
    "log_rw_pdf",
    "log_rw_cdf",
    "poly_rw_pdf",
    "poly_rw_cdf",
    "exp_ra_pdf",
    "exp_ra_cdf",
    "chain_ra_pdf",
    "chain_ra_cdf",
    # batched expectation / ratio engine
    "FAMILIES",
    "expected_cost_grid",
    "competitive_ratio_grid",
    "constrained_competitive_ratio_grid",
    "upper_concave_envelope",
]

#: ``ln 4 - 1`` — normalization constant of the Theorem 5 log-density.
_LN4M1 = math.log(4.0) - 1.0

#: x-grid resolution of the batched quadrature (matches
#: ``repro.core.verify._X_GRID`` so batched and per-cell values agree).
_X_GRID = 8193


# ----------------------------------------------------------------------
# Validation helpers
# ----------------------------------------------------------------------
def _as_float(name: str, value) -> np.ndarray:
    arr = np.asarray(value, dtype=float)
    if arr.size and not np.all(np.isfinite(arr)):
        raise InvalidParameterError(f"{name} must be finite everywhere")
    return arr


def _check_k(k) -> np.ndarray:
    arr = np.asarray(k)
    if arr.size and not np.issubdtype(arr.dtype, np.number):
        raise InvalidParameterError(f"k must be numeric, got dtype {arr.dtype}")
    arr = arr.astype(float) if arr.dtype != float else arr
    if arr.size and (np.any(arr < 2) or np.any(arr != np.floor(arr))):
        raise InvalidParameterError("k must be integers >= 2 everywhere")
    return arr


def _check_positive(name: str, value) -> np.ndarray:
    arr = _as_float(name, value)
    if arr.size and np.any(arr <= 0):
        raise InvalidParameterError(f"{name} must be positive everywhere")
    return arr


def _check_nonneg(name: str, value) -> np.ndarray:
    arr = _as_float(name, value)
    if arr.size and np.any(arr < 0):
        raise InvalidParameterError(f"{name} must be >= 0 everywhere")
    return arr


# ----------------------------------------------------------------------
# Chain constants
# ----------------------------------------------------------------------
def _per_unique_k(k: np.ndarray, fn) -> np.ndarray:
    """Evaluate ``fn`` (a scalar ``math``-library form) once per unique
    ``k`` and scatter.  The constrained-ratio formulas divide by small
    quantities like ``R - 2``, so the chain constants must match the
    scalar references *bit for bit* — ``np.exp``/``np.log`` can differ
    from ``math.exp``/``math.log`` by an ulp, which the division then
    amplifies past the 1e-12 equivalence budget."""
    out = np.empty(k.shape, dtype=float)
    for kv in np.unique(k):
        out[k == kv] = fn(int(kv))
    return out


def rw_chain_ratio_R(k) -> np.ndarray:
    """Vector ``R = (k/(k-1))^{k-1}``; reference
    :func:`repro.core.requestor_wins.rw_chain_ratio_R`."""
    k = _check_k(k)
    return _per_unique_k(k, lambda kv: math.exp((kv - 1) * math.log(kv / (kv - 1))))


def ra_chain_E(k) -> np.ndarray:
    """Vector ``E = e^{1/(k-1)}``; reference
    :func:`repro.core.requestor_aborts.ra_chain_E`."""
    k = _check_k(k)
    return _per_unique_k(k, lambda kv: math.exp(1.0 / (kv - 1)))


# ----------------------------------------------------------------------
# Closed-form competitive ratios and regime thresholds
# ----------------------------------------------------------------------
def det_rw_ratio(k) -> np.ndarray:
    """Theorem 4 ratio ``2 + 1/(k-1)`` over a ``k`` grid."""
    k = _check_k(k)
    return 2.0 + 1.0 / (k - 1)


def det_ra_ratio(k) -> np.ndarray:
    """Deterministic requestor-aborts ratio ``k`` over a ``k`` grid."""
    return _check_k(k) + 0.0


def rand_rw_uniform_ratio(k) -> np.ndarray:
    """Theorem 5 uniform-strategy guarantee (2 for every k)."""
    k = _check_k(k)
    return np.full_like(k, 2.0)


def rand_rw_optimal_ratio(k) -> np.ndarray:
    """Optimal unconstrained randomized RW ratio: 2 at ``k = 2``,
    ``R/(R-1)`` for ``k >= 3`` (Thm 5/6)."""
    k = _check_k(k)
    R = rw_chain_ratio_R(k)
    with np.errstate(divide="ignore", invalid="ignore"):
        poly = R / (R - 1.0)
    return np.where(k == 2, 2.0, poly)


def rand_ra_ratio(k) -> np.ndarray:
    """Theorems 1/3 ratio ``E/(E-1)`` with ``E = e^{1/(k-1)}``."""
    E = ra_chain_E(k)
    return E / (E - 1.0)


def constrained_rw_ratio(B, mu, k=2) -> np.ndarray:
    """Theorems 5/6 mean-constrained RW ratio over ``(B, mu, k)`` grids."""
    B = _check_positive("B", B)
    mu = _as_float("mu", mu)
    k = _check_k(k)
    B, mu, k = np.broadcast_arrays(B, mu, k)
    B, mu, k = np.asarray(B, float), np.asarray(mu, float), np.asarray(k, float)
    R = rw_chain_ratio_R(k)
    with np.errstate(divide="ignore", invalid="ignore"):
        poly = 1.0 + mu * (k - 2) / (2.0 * B * (R - 2.0))
    return np.where(k == 2, 1.0 + mu / (2.0 * B * _LN4M1), poly)


def constrained_ra_ratio(B, mu, k=2) -> np.ndarray:
    """Theorems 2/3 mean-constrained RA ratio ``1 + mu(k-1)/(2BZ)``."""
    B = _check_positive("B", B)
    mu = _as_float("mu", mu)
    k = _check_k(k)
    E = ra_chain_E(k)
    Z = (k - 1) * (E - 1.0) - 1.0
    return 1.0 + mu * (k - 1) / (2.0 * B * Z)


def rw_mean_regime_threshold(k=2) -> np.ndarray:
    """Largest ``mu/B`` for which the constrained RW policy wins."""
    k = _check_k(k)
    R = rw_chain_ratio_R(k)
    with np.errstate(divide="ignore", invalid="ignore"):
        poly = 2.0 * (R - 2.0) / ((k - 2) * (R - 1.0))
    return np.where(k == 2, 2.0 * _LN4M1, poly)


def ra_mean_regime_threshold(k=2) -> np.ndarray:
    """Largest ``mu/B`` for which the constrained RA policy wins."""
    k = _check_k(k)
    E = ra_chain_E(k)
    Z = (k - 1) * (E - 1.0) - 1.0
    return 2.0 * Z / ((k - 1) * (E - 1.0))


def rw_best_ratio(B, mu, k=2) -> np.ndarray:
    """Ratio achieved by the :func:`optimal_requestor_wins` factory:
    the constrained ratio inside the mean regime, the unconstrained
    optimum outside it (the theorems' "otherwise" clause)."""
    B = _check_positive("B", B)
    mu = _check_positive("mu", mu)
    k = _check_k(k)
    B, mu, k = (np.asarray(a, float) for a in np.broadcast_arrays(B, mu, k))
    inside = mu / B < rw_mean_regime_threshold(k)
    return np.where(
        inside, constrained_rw_ratio(B, mu, k), rand_rw_optimal_ratio(k)
    )


def ra_best_ratio(B, mu, k=2) -> np.ndarray:
    """Ratio achieved by the :func:`optimal_requestor_aborts` factory
    (continuous form): constrained inside the regime, ``E/(E-1)``
    outside."""
    B = _check_positive("B", B)
    mu = _check_positive("mu", mu)
    k = _check_k(k)
    B, mu, k = (np.asarray(a, float) for a in np.broadcast_arrays(B, mu, k))
    inside = mu / B < ra_mean_regime_threshold(k)
    return np.where(
        inside, constrained_ra_ratio(B, mu, k), rand_ra_ratio(k)
    )


def abort_probability_rw(B) -> np.ndarray:
    """Section 5.3 RW abort probability ``1 - ln2/(B(ln4-1))`` (k = 2)."""
    B = _check_positive("B", B)
    return 1.0 - math.log(2.0) / (B * _LN4M1)


def abort_probability_ra(B) -> np.ndarray:
    """Section 5.3 RA abort probability ``1 - (e-1)/(B(e-2))`` (k = 2)."""
    B = _check_positive("B", B)
    return 1.0 - (math.e - 1.0) / (B * (math.e - 2.0))


def corollary1_bound(waste) -> np.ndarray:
    """Corollary 1 bound ``(2w+1)/(w+1)`` over a waste grid."""
    w = _check_nonneg("waste", waste)
    return (2.0 * w + 1.0) / (w + 1.0)


# ----------------------------------------------------------------------
# Ski rental
# ----------------------------------------------------------------------
def ski_offline_cost(B, days) -> np.ndarray:
    """``min(days, B)`` over ``(B, days)`` grids; reference
    :func:`repro.core.ski_rental.optimal_offline_cost`."""
    B = _check_positive("B", B)
    days = _check_nonneg("days", days)
    return np.minimum(days, B)


def ski_discrete_ratio(B) -> np.ndarray:
    """Exact Theorem 1 discrete ratio ``1/(1-(1-1/B)^B)`` over a ``B``
    grid (1.0 at ``B = 1``)."""
    B = _as_float("B", B)
    if B.size and (np.any(B < 1) or np.any(B != np.floor(B))):
        raise InvalidParameterError("B must be integers >= 1 everywhere")
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = 1.0 / (1.0 - ((B - 1) / B) ** B)
    return np.where(B > 1, ratio, 1.0)


def ski_expected_cost_randomized(B, days) -> np.ndarray:
    """Exact expected cost of the Theorem 1 strategy over ``(B, days)``
    grids; reference
    :func:`repro.core.ski_rental.expected_cost_randomized`.

    The Karlin PMF is hoisted per *unique* ``B`` (the scalar reference
    rebuilds it on every call), and all tours sharing a ``B`` are
    evaluated in one matrix pass.
    """
    B = np.asarray(B)
    days = np.asarray(days)
    if B.size and (
        not np.issubdtype(B.dtype, np.number)
        or np.any(np.asarray(B, float) < 1)
        or np.any(np.asarray(B, float) != np.floor(np.asarray(B, float)))
    ):
        raise InvalidParameterError("B must be integers >= 1 everywhere")
    days_f = _check_nonneg("days", days)
    Bb, Db = np.broadcast_arrays(np.asarray(B, float), days_f)
    out = np.empty(Bb.shape, dtype=float)
    flatB, flatD, flat_out = Bb.ravel(), Db.ravel(), out.ravel()
    for b in np.unique(flatB):
        nb = int(b)
        q = (nb - 1) / nb
        weights = q ** np.arange(nb - 1, -1, -1, dtype=float)
        pmf = weights / weights.sum()
        buy_days = np.arange(1, nb + 1)
        sel = flatB == b
        d = flatD[sel]
        costs = np.where(
            buy_days[None, :] > d[:, None], d[:, None], buy_days - 1.0 + nb
        )
        flat_out[sel] = costs @ pmf
    return out


# ----------------------------------------------------------------------
# Conflict cost model
# ----------------------------------------------------------------------
def _kind(kind) -> ConflictKind:
    if isinstance(kind, ConflictKind):
        return kind
    try:
        return ConflictKind(kind)
    except ValueError as exc:
        raise InvalidParameterError(f"unknown conflict kind {kind!r}") from exc


def conflict_cost(kind, delay, remaining, B, k=2) -> np.ndarray:
    """Section 4 conflict cost over ``(x, D, B, k)`` grids; reference
    :meth:`repro.core.model.ConflictModel.cost` (which broadcasts only
    ``x`` and ``D`` for a fixed model)."""
    kind = _kind(kind)
    x = _check_nonneg("delay", delay)
    d = _check_nonneg("remaining", remaining)
    B = _check_positive("B", B)
    k = _check_k(k)
    x, d, B, k = (np.asarray(a, float) for a in np.broadcast_arrays(x, d, B, k))
    commit_cost = (k - 1) * d
    if kind is ConflictKind.REQUESTOR_WINS:
        abort_cost = k * x + B
    else:
        abort_cost = (k - 1) * (x + B)
    return np.where(d <= x, commit_cost, abort_cost)


def conflict_opt(remaining, B, k=2) -> np.ndarray:
    """Offline optimum ``min((k-1)D, B)`` over ``(D, B, k)`` grids."""
    d = _check_nonneg("remaining", remaining)
    B = _check_positive("B", B)
    k = _check_k(k)
    return np.minimum((k - 1) * d, B)


# ----------------------------------------------------------------------
# Policy density kernels
#
# Each pair mirrors the corresponding policy class's pdf_vec/cdf_vec
# exactly, but broadcasts over the *parameters* as well as x — one call
# evaluates a whole (x, B, k, mu) grid.
# ----------------------------------------------------------------------
def _support_mask(x, hi) -> np.ndarray:
    return (x >= 0.0) & (x <= hi)


def uniform_rw_pdf(x, B, k=2) -> np.ndarray:
    """Theorem 5 uniform density on ``[0, B/(k-1)]``; reference
    :meth:`UniformRW.pdf_vec`."""
    x = _as_float("x", x)
    B = _check_positive("B", B)
    k = _check_k(k)
    x, B, k = (np.asarray(a, float) for a in np.broadcast_arrays(x, B, k))
    return np.where(_support_mask(x, B / (k - 1)), (k - 1) / B, 0.0)


def uniform_rw_cdf(x, B, k=2) -> np.ndarray:
    """Uniform CDF ``clip(x(k-1)/B, 0, 1)``; reference
    :meth:`UniformRW.cdf_vec`."""
    x = _as_float("x", x)
    B = _check_positive("B", B)
    k = _check_k(k)
    return np.clip(x * (k - 1) / B, 0.0, 1.0)


def log_rw_pdf(x, B) -> np.ndarray:
    """Theorem 5 mean-constrained log-density (k = 2); reference
    :meth:`MeanConstrainedRW.pdf_vec`."""
    x = _as_float("x", x)
    B = _check_positive("B", B)
    x, B = (np.asarray(a, float) for a in np.broadcast_arrays(x, B))
    inside = _support_mask(x, B)
    safe = np.where(inside, x, 0.0)
    return np.where(inside, np.log1p(safe / B) / (B * _LN4M1), 0.0)


def log_rw_cdf(x, B) -> np.ndarray:
    """CDF of the log-density; reference :meth:`MeanConstrainedRW.cdf_vec`."""
    x = _as_float("x", x)
    B = _check_positive("B", B)
    x, B = (np.asarray(a, float) for a in np.broadcast_arrays(x, B))
    clipped = np.clip(x, 0.0, B)
    raw = ((B + clipped) * np.log1p(clipped / B) - clipped) / (B * _LN4M1)
    return np.where(x >= B, 1.0, np.where(x <= 0.0, 0.0, raw))


def poly_rw_pdf(x, B, k, *, constrained: bool = False) -> np.ndarray:
    """Theorem 6 polynomial density (``k >= 3``); reference
    :meth:`PolynomialRW.pdf_vec` (corrected constrained form)."""
    x = _as_float("x", x)
    B = _check_positive("B", B)
    k = _check_k(k)
    if np.asarray(k).size and np.any(np.asarray(k, float) < 3):
        raise InvalidParameterError("polynomial RW family requires k >= 3")
    x, B, k = (np.asarray(a, float) for a in np.broadcast_arrays(x, B, k))
    R = rw_chain_ratio_R(k)
    inside = _support_mask(x, B / (k - 1))
    safe = np.where(inside, x, 0.0)
    base = np.power(1.0 + safe / B, k - 2)
    if constrained:
        vals = (k - 1) / (B * (R - 2.0)) * (base - 1.0)
    else:
        vals = (k - 1) / (B * (R - 1.0)) * base
    return np.where(inside, vals, 0.0)


def poly_rw_cdf(x, B, k, *, constrained: bool = False) -> np.ndarray:
    """Theorem 6 polynomial CDF; reference :meth:`PolynomialRW.cdf_vec`."""
    x = _as_float("x", x)
    B = _check_positive("B", B)
    k = _check_k(k)
    if np.asarray(k).size and np.any(np.asarray(k, float) < 3):
        raise InvalidParameterError("polynomial RW family requires k >= 3")
    x, B, k = (np.asarray(a, float) for a in np.broadcast_arrays(x, B, k))
    R = rw_chain_ratio_R(k)
    hi = B / (k - 1)
    clipped = np.clip(x, 0.0, hi)
    ratio_pow = np.power(1.0 + clipped / B, k - 1)
    if constrained:
        raw = (ratio_pow - 1.0 - (k - 1) * clipped / B) / (R - 2.0)
    else:
        raw = (ratio_pow - 1.0) / (R - 1.0)
    return np.where(x >= hi, 1.0, np.where(x <= 0.0, 0.0, raw))


def exp_ra_pdf(x, B, k=2) -> np.ndarray:
    """Theorems 1/3 exponential density; reference
    :meth:`ExponentialRA.pdf_vec`."""
    x = _as_float("x", x)
    B = _check_positive("B", B)
    k = _check_k(k)
    x, B, k = (np.asarray(a, float) for a in np.broadcast_arrays(x, B, k))
    E = ra_chain_E(k)
    inside = _support_mask(x, B / (k - 1))
    safe = np.where(inside, x, 0.0)
    return np.where(inside, np.exp(safe / B) / (B * (E - 1.0)), 0.0)


def exp_ra_cdf(x, B, k=2) -> np.ndarray:
    """Exponential-family CDF; reference :meth:`ExponentialRA.cdf_vec`."""
    x = _as_float("x", x)
    B = _check_positive("B", B)
    k = _check_k(k)
    x, B, k = (np.asarray(a, float) for a in np.broadcast_arrays(x, B, k))
    E = ra_chain_E(k)
    hi = B / (k - 1)
    clipped = np.clip(x, 0.0, hi)
    raw = np.expm1(clipped / B) / (E - 1.0)
    return np.where(x >= hi, 1.0, np.where(x <= 0.0, 0.0, raw))


def chain_ra_pdf(x, B, k=2) -> np.ndarray:
    """Theorems 2/3 mean-constrained RA density; reference
    :meth:`ChainRA.pdf_vec`."""
    x = _as_float("x", x)
    B = _check_positive("B", B)
    k = _check_k(k)
    x, B, k = (np.asarray(a, float) for a in np.broadcast_arrays(x, B, k))
    E = ra_chain_E(k)
    Z = (k - 1) * (E - 1.0) - 1.0
    inside = _support_mask(x, B / (k - 1))
    safe = np.where(inside, x, 0.0)
    return np.where(inside, (k - 1) * np.expm1(safe / B) / (B * Z), 0.0)


def chain_ra_cdf(x, B, k=2) -> np.ndarray:
    """Mean-constrained RA CDF; reference :meth:`ChainRA.cdf_vec`."""
    x = _as_float("x", x)
    B = _check_positive("B", B)
    k = _check_k(k)
    x, B, k = (np.asarray(a, float) for a in np.broadcast_arrays(x, B, k))
    E = ra_chain_E(k)
    Z = (k - 1) * (E - 1.0) - 1.0
    hi = B / (k - 1)
    clipped = np.clip(x, 0.0, hi)
    raw = (k - 1) * (np.expm1(clipped / B) - clipped / B) / Z
    return np.where(x >= hi, 1.0, np.where(x <= 0.0, 0.0, raw))


# ----------------------------------------------------------------------
# Batched expectation / competitive-ratio engine
# ----------------------------------------------------------------------
#: Continuous policy families the batched engine understands, mapped to
#: their (pdf, cdf) kernels in ``f(x, B, k)`` form.  ``det`` is handled
#: separately (a point mass needs no quadrature).
FAMILIES = ("det", "uniform_rw", "log_rw", "poly_rw", "poly_rw_mu", "exp_ra", "chain_ra")


def _family_pdf_cdf(family: str):
    if family == "uniform_rw":
        return uniform_rw_pdf, uniform_rw_cdf
    if family == "log_rw":
        return (lambda x, B, k: log_rw_pdf(x, B)), (lambda x, B, k: log_rw_cdf(x, B))
    if family == "poly_rw":
        return (
            lambda x, B, k: poly_rw_pdf(x, B, k),
            lambda x, B, k: poly_rw_cdf(x, B, k),
        )
    if family == "poly_rw_mu":
        return (
            lambda x, B, k: poly_rw_pdf(x, B, k, constrained=True),
            lambda x, B, k: poly_rw_cdf(x, B, k, constrained=True),
        )
    if family == "exp_ra":
        return exp_ra_pdf, exp_ra_cdf
    if family == "chain_ra":
        return chain_ra_pdf, chain_ra_cdf
    raise InvalidParameterError(f"unknown policy family {family!r}")


def _cells(B, k) -> tuple[np.ndarray, np.ndarray]:
    B = _check_positive("B", B)
    k = _check_k(k)
    B, k = (np.asarray(a, float) for a in np.broadcast_arrays(B, k))
    return np.atleast_1d(B), np.atleast_1d(k)


def expected_cost_grid(
    kind,
    family: str,
    B,
    k,
    remaining,
    *,
    x0=None,
    x_grid: int = _X_GRID,
) -> np.ndarray:
    """``E_x[cost(x, D)]`` for every parameter cell x every ``D``.

    ``B`` and ``k`` broadcast to the cell axis (shape ``(C,)`` after
    ``atleast_1d``); ``remaining`` is a shared ``D`` grid of shape
    ``(nD,)``.  Returns shape ``(C, nD)``.

    ``family`` picks the policy: ``"det"`` is the deterministic point
    mass (delay ``x0``, default ``B/(k-1)``, broadcastable per cell);
    the continuous families integrate ``abort_cost * pdf`` with the
    same cumulative-trapezoid rule as
    :func:`repro.core.verify.expected_cost_curve`, batched over cells.
    """
    kind = _kind(kind)
    Bc, kc = _cells(B, k)
    d = np.atleast_1d(_check_nonneg("remaining", remaining))

    def abort_cost(x, Bv, kv):
        if kind is ConflictKind.REQUESTOR_WINS:
            return kv * x + Bv
        return (kv - 1) * (x + Bv)

    if family == "det":
        delay = (
            Bc / (kc - 1)
            if x0 is None
            else np.broadcast_to(
                _check_nonneg("x0", x0), Bc.shape
            ).astype(float)
        )
        commit = d[None, :] <= delay[:, None]
        return np.where(
            commit,
            (kc[:, None] - 1) * d[None, :],
            abort_cost(delay, Bc, kc)[:, None],
        )

    pdf_fn, cdf_fn = _family_pdf_cdf(family)
    hi = Bc / (kc - 1)
    # per-cell x-grids as rows of one 2-D array; np.linspace with array
    # endpoints produces bit-identical rows to the per-cell scalar call
    xs = np.linspace(np.zeros_like(hi), hi, x_grid, axis=-1)
    integrand = abort_cost(xs, Bc[:, None], kc[:, None]) * pdf_fn(
        xs, Bc[:, None], kc[:, None]
    )
    dx = xs[:, 1] - xs[:, 0] if x_grid > 1 else np.zeros_like(hi)
    segments = 0.5 * (integrand[:, 1:] + integrand[:, :-1]) * dx[:, None]
    cum = np.concatenate(
        (np.zeros((len(hi), 1)), np.cumsum(segments, axis=-1)), axis=-1
    )
    d_clip = np.clip(d[None, :], 0.0, hi[:, None])
    # np.interp is 1-D; a short Python loop over cells keeps the batched
    # values bit-identical to the scalar reference (the heavy work —
    # pdf, integrand, cumsum over (C, x_grid) — is already batched)
    abort_part = np.empty((len(hi), d.size))
    for i in range(len(hi)):
        abort_part[i] = np.interp(d_clip[i], xs[i], cum[i])
    surv = 1.0 - cdf_fn(d[None, :], Bc[:, None], kc[:, None])
    return abort_part + (kc[:, None] - 1) * d[None, :] * surv


def _adversary_grid_cell(
    cap: float, edges: tuple[float, ...], n: int, d_max_factor: float
) -> np.ndarray:
    """Adversary ``D`` grid for one cell, built exactly like
    :func:`repro.core.verify._adversary_grid` (dense over
    ``(0, max(cap, hi) * f]`` plus refined points around support edges
    / point masses) so the batched supremum is bit-identical to the
    per-cell scalar path.  ``edges[1]`` is the support's upper edge."""
    d_max = max(cap, edges[1]) * d_max_factor
    grid = np.linspace(d_max / n, d_max, n)
    special: list[float] = []
    eps = 1e-9 * max(1.0, cap)
    for edge in edges:
        for point in (edge - eps, edge, edge + eps):
            if point > 0:
                special.append(point)
    return np.unique(np.concatenate((grid, np.asarray(special))))


def _cell_edges(family: str, cap: float, x0) -> tuple[float, ...]:
    # mirrors verify._adversary_grid's (lo, hi, cap, deterministic
    # point) edge list: engine families have lo = 0 and hi = cap; the
    # det family is a point mass at x0 (support lo = hi = x0)
    if family == "det":
        point = cap if x0 is None else float(x0)
        return (point, point, cap, point)
    return (0.0, cap, cap, cap)


def competitive_ratio_grid(
    kind,
    family: str,
    B,
    k,
    *,
    x0=None,
    grid: int = 2048,
    d_max_factor: float = 4.0,
) -> tuple[np.ndarray, np.ndarray]:
    """``sup_D E[cost]/OPT(D)`` for every parameter cell.

    Returns ``(ratios, worst_remaining)`` arrays of shape ``(C,)``.
    The supremum is a grid-search lower bound exactly like
    :func:`repro.core.verify.competitive_ratio`, and reproduces it bit
    for bit (same adversary grid, same quadrature); the expected-cost
    curves for all cells go through the batched engine.
    """
    Bc, kc = _cells(B, k)
    cap = Bc / (kc - 1)
    ratios = np.empty(len(Bc))
    worst = np.empty(len(Bc))
    for i in range(len(Bc)):
        d = _adversary_grid_cell(
            float(cap[i]), _cell_edges(family, float(cap[i]), x0), grid, d_max_factor
        )
        e = expected_cost_grid(kind, family, Bc[i], kc[i], d, x0=x0)[0]
        r = e / np.minimum((kc[i] - 1) * d, Bc[i])
        j = int(np.argmax(r))
        ratios[i], worst[i] = float(r[j]), float(d[j])
    return ratios, worst


def upper_concave_envelope(xs: np.ndarray, ys: np.ndarray, at: float) -> float:
    """Value at ``at`` of the upper concave envelope of ``(xs, ys)``
    (monotone-chain upper hull + linear interpolation).  The extremal
    mean-constrained adversary is a two-point distribution, so the
    envelope at ``mu`` is the constrained competitive ratio."""
    order = np.argsort(xs)
    pts = list(zip(xs[order].tolist(), ys[order].tolist()))
    hull: list[tuple[float, float]] = []
    for p in pts:
        while len(hull) >= 2:
            (x1, y1), (x2, y2) = hull[-2], hull[-1]
            if (x2 - x1) * (p[1] - y1) >= (p[0] - x1) * (y2 - y1):
                hull.pop()
            else:
                break
        if hull and hull[-1][0] == p[0]:
            if p[1] > hull[-1][1]:
                hull[-1] = p
            continue
        hull.append(p)
    hx = np.asarray([p[0] for p in hull])
    hy = np.asarray([p[1] for p in hull])
    if at <= hx[0]:
        return float(hy[0])
    if at >= hx[-1]:
        return float(hy[-1])
    return float(np.interp(at, hx, hy))


def constrained_competitive_ratio_grid(
    kind,
    family: str,
    B,
    k,
    mu,
    *,
    grid: int = 2048,
    d_max_factor: float = 4.0,
) -> np.ndarray:
    """Best mean-``mu`` adversary value per parameter cell.

    Reproduces per-cell
    :func:`repro.core.verify.constrained_competitive_ratio` bit for
    bit; the ratio curves go through the batched quadrature engine and
    the (cheap) concave-hull step runs per cell.
    """
    Bc, kc = _cells(B, k)
    mu = np.broadcast_to(_check_positive("mu", mu), Bc.shape).astype(float)
    cap = Bc / (kc - 1)
    out = np.empty(len(Bc))
    for i in range(len(Bc)):
        d = _adversary_grid_cell(
            float(cap[i]), _cell_edges(family, float(cap[i]), None), grid, d_max_factor
        )
        e = expected_cost_grid(kind, family, Bc[i], kc[i], d)[0]
        ratios = e / np.minimum((kc[i] - 1) * d, Bc[i])
        out[i] = upper_concave_envelope(d, ratios, float(mu[i]))
    return out
