"""Numeric verification of the paper's optimality claims.

Closed-form theorems are only trustworthy once checked against an
implementation-independent computation, so this module evaluates any
:class:`~repro.core.policy.DelayPolicy` against any
:class:`~repro.core.model.ConflictModel` numerically:

* :func:`expected_cost` — ``E_x[cost(x, D)]`` by cumulative trapezoid
  quadrature (continuous policies), exact summation (discrete), or
  direct evaluation (deterministic).  The whole ``D``-grid is evaluated
  with one shared ``x``-grid pass (vectorized; no per-D quadrature).
* :func:`competitive_ratio` — ``sup_D E[cost]/OPT(D)`` over an
  adversary grid that includes the policy's support edges and the
  "always abort" limit ``D -> inf`` (where ``OPT = B``).
* :func:`constrained_competitive_ratio` — the best adversary *with a
  mean constraint* ``E[D] = mu``.  Over distributions on a grid the
  maximizer of ``E_pi[g(D)]`` subject to ``E_pi[D] = mu`` is the upper
  concave envelope of ``g`` evaluated at ``mu`` (two-point adversaries
  suffice), which we compute with a monotone-chain upper hull.
* :func:`simulate_costs` — Monte-Carlo realized costs, for
  theory-vs-simulation agreement tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.kernels import upper_concave_envelope
from repro.core.model import ConflictKind, ConflictModel
from repro.core.policy import DelayPolicy
from repro.errors import InvalidParameterError
from repro.rngutil import ensure_rng

__all__ = [
    "RatioResult",
    "expected_cost",
    "expected_cost_curve",
    "competitive_ratio",
    "constrained_competitive_ratio",
    "simulate_costs",
    "abort_probability",
]

#: x-grid resolution for quadrature over the policy support.
_X_GRID = 8193


@dataclass(frozen=True)
class RatioResult:
    """Outcome of a competitive-ratio computation."""

    ratio: float
    worst_remaining: float

    def __float__(self) -> float:  # pragma: no cover - convenience
        return self.ratio


def _abort_cost_vec(model: ConflictModel, x: np.ndarray) -> np.ndarray:
    """Cost paid when the receiver fails to commit within delay ``x``."""
    if model.kind is ConflictKind.REQUESTOR_WINS:
        return model.k * x + model.B
    return model.waiters * (x + model.B)


def _policy_support(policy: DelayPolicy) -> tuple[float, float]:
    lo, hi = policy.support
    if not (math.isfinite(lo) and math.isfinite(hi)) or hi < lo:
        raise InvalidParameterError(
            f"policy {policy.name!r} has unusable support {policy.support!r}"
        )
    return lo, hi


def expected_abort_cost(policy: DelayPolicy, model: ConflictModel) -> float:
    """``E_x[abort_cost(x)]`` — the certain-abort (``D -> inf``) cost."""
    lo, hi = _policy_support(policy)
    if hasattr(policy, "pdf_vec"):
        xs = np.linspace(lo, hi, _X_GRID)
        return float(np.trapezoid(_abort_cost_vec(model, xs) * policy.pdf_vec(xs), xs))
    if hasattr(policy, "_pmf"):  # discrete (day-indexed) policy
        delays = np.arange(len(policy._pmf), dtype=float)
        return float(np.dot(policy._pmf, _abort_cost_vec(model, delays)))
    if policy.is_deterministic():
        return float(_abort_cost_vec(model, np.asarray([policy.sample()]))[0])
    raise InvalidParameterError(
        f"cannot integrate policy {policy.name!r}: no pdf_vec/_pmf and not "
        f"deterministic"
    )


def expected_cost_curve(
    policy: DelayPolicy, model: ConflictModel, remaining: np.ndarray
) -> np.ndarray:
    """``E_x[cost(x, D)]`` for every ``D`` in ``remaining`` (vectorized).

    Decomposition (tie ``x = D`` commits, measure zero for continuous
    policies): aborts happen for ``x < D``, commits for ``x >= D``::

        E(D) = integral_{lo}^{min(D,hi)} abort(x) p(x) dx
             + (k-1) * D * P(x >= D)
    """
    d = np.asarray(remaining, dtype=float)
    if np.any(d < 0):
        raise InvalidParameterError("remaining times must be >= 0")
    lo, hi = _policy_support(policy)

    if policy.is_deterministic():
        x0 = float(policy.sample())
        commit = d <= x0
        return np.where(
            commit,
            model.waiters * d,
            float(_abort_cost_vec(model, np.asarray([x0]))[0]),
        )

    if hasattr(policy, "pdf_vec"):
        xs = np.linspace(lo, hi, _X_GRID)
        integrand = _abort_cost_vec(model, xs) * policy.pdf_vec(xs)
        # cumulative trapezoid: A[i] = integral_{lo}^{xs[i]} abort * p
        dx = xs[1] - xs[0] if len(xs) > 1 else 0.0
        segments = 0.5 * (integrand[1:] + integrand[:-1]) * dx
        cum = np.concatenate(([0.0], np.cumsum(segments)))
        d_clip = np.clip(d, lo, hi)
        abort_part = np.interp(d_clip, xs, cum)
        # P(x >= D) with P(x >= D) = 1 - F(D) (+ mass exactly at D for
        # continuous policies is zero)
        surv = 1.0 - policy.cdf_vec(d)
        return abort_part + model.waiters * d * surv

    if hasattr(policy, "_pmf"):
        delays = np.arange(len(policy._pmf), dtype=float)
        pmf = np.asarray(policy._pmf, dtype=float)
        aborts = _abort_cost_vec(model, delays)
        # For each D: sum_{x < D} abort(x) pmf(x) + (k-1) D P(x >= D)
        out = np.empty_like(d)
        for i, di in enumerate(d.ravel()):
            abort_mask = delays < di
            out.ravel()[i] = float(
                np.dot(pmf[abort_mask], aborts[abort_mask])
            ) + model.waiters * di * float(pmf[~abort_mask].sum())
        return out

    raise InvalidParameterError(
        f"cannot integrate policy {policy.name!r}: no pdf_vec/_pmf and not "
        f"deterministic"
    )


def expected_cost(
    policy: DelayPolicy, model: ConflictModel, remaining: float
) -> float:
    """Scalar convenience wrapper over :func:`expected_cost_curve`."""
    return float(expected_cost_curve(policy, model, np.asarray([remaining]))[0])


def _adversary_grid(
    policy: DelayPolicy, model: ConflictModel, n: int, d_max_factor: float
) -> np.ndarray:
    """Adversary D values: dense over (0, cap], refined near support
    edges / point masses, extended past the cap (OPT flattens at B)."""
    lo, hi = _policy_support(policy)
    cap = model.delay_cap
    d_max = max(cap, hi) * d_max_factor
    if hasattr(policy, "_pmf"):
        # Day-indexed (discrete) policies live in a model where the
        # adversary picks whole days D >= 1; a fractional D < 1 would
        # let it exploit the buy-on-day-1 mass outside the model.
        return np.arange(1.0, math.ceil(d_max) + 1.0)
    grid = np.linspace(d_max / n, d_max, n)
    special: list[float] = []
    eps = 1e-9 * max(1.0, cap)
    for edge in (lo, hi, cap, policy.sample() if policy.is_deterministic() else cap):
        for point in (edge - eps, edge, edge + eps):
            if point > 0:
                special.append(point)
    return np.unique(np.concatenate((grid, np.asarray(special))))


def competitive_ratio(
    policy: DelayPolicy,
    model: ConflictModel,
    *,
    grid: int = 2048,
    d_max_factor: float = 4.0,
) -> RatioResult:
    """``sup_D E[cost(policy, D)] / OPT(D)`` over the adversary grid.

    The returned supremum is a *lower bound* on the true worst case
    (grid search), accurate to the grid resolution; tests use tolerances
    accordingly.
    """
    d = _adversary_grid(policy, model, grid, d_max_factor)
    ratios = expected_cost_curve(policy, model, d) / model.opt_vec(d)
    idx = int(np.argmax(ratios))
    return RatioResult(float(ratios[idx]), float(d[idx]))


# the monotone-chain upper-hull implementation lives in the kernels
# module (shared with the batched constrained-ratio engine)
_upper_concave_envelope = upper_concave_envelope


def constrained_competitive_ratio(
    policy: DelayPolicy,
    model: ConflictModel,
    mu: float,
    *,
    grid: int = 2048,
    d_max_factor: float = 4.0,
) -> RatioResult:
    """Best adversary with mean ``mu``: the upper concave envelope of
    the pointwise ratio curve, evaluated at ``mu``.

    Two-point adversary distributions are extremal for a single linear
    constraint, and the envelope value is exactly the best two-point
    mixture.  For the paper's optimal constrained policies the ratio
    curve is linear (``1 + lambda2 * D``) so the envelope at ``mu`` is
    ``1 + lambda2 * mu`` — the closed-form competitive ratio.
    """
    if mu <= 0 or not math.isfinite(mu):
        raise InvalidParameterError(f"mu must be finite and positive, got {mu}")
    d = _adversary_grid(policy, model, grid, d_max_factor)
    ratios = expected_cost_curve(policy, model, d) / model.opt_vec(d)
    value = _upper_concave_envelope(d, ratios, mu)
    return RatioResult(value, mu)


def simulate_costs(
    policy: DelayPolicy,
    model: ConflictModel,
    remaining: np.ndarray | float,
    rng: np.random.Generator | int | None = None,
    *,
    n: int | None = None,
) -> np.ndarray:
    """Monte-Carlo realized conflict costs.

    ``remaining`` may be a scalar (replicated ``n`` times) or an array of
    per-trial remaining times; one delay is drawn per trial.
    """
    gen = ensure_rng(rng)
    d = np.asarray(remaining, dtype=float)
    if d.ndim == 0:
        if n is None:
            raise InvalidParameterError("scalar remaining requires n trials")
        d = np.full(n, float(d))
    delays = policy.sample_many(d.size, gen)
    return model.cost_vec(delays, d)


def abort_probability(
    policy: DelayPolicy, model: ConflictModel, remaining: float
) -> float:
    """``P(policy aborts | remaining = D)`` = ``P(x < D)``."""
    if remaining < 0:
        raise InvalidParameterError("remaining must be >= 0")
    if hasattr(policy, "cdf_vec"):
        return float(policy.cdf_vec(np.asarray([remaining]))[0])
    return policy.cdf(remaining - 1e-12 * max(1.0, remaining))
