"""The conflict cost model of Section 4.

A *conflict* involves a chain of ``k >= 2`` transactions: one **receiver**
(T1, the transaction currently holding the contended data) and ``k - 1``
transactions waiting on it (the requestor, plus any transactions already
waiting on the requestor).  The online algorithm picks a grace period
``x`` (the *delay*); the adversary controls the receiver's unknown
remaining running time ``D``.

Requestor wins (Section 4.1)
    * ``D <= x``: the receiver commits inside the grace period.  Each of
      the ``k - 1`` waiters was delayed by ``D``; total cost
      ``(k - 1) * D``.
    * ``D >  x``: the receiver is aborted at ``x``.  We pay the abort
      cost ``B``, the ``x`` wasted steps of the receiver, and the ``x``
      delay of each of the ``k - 1`` waiters; total ``k * x + B``.

Requestor aborts (Section 4.2)
    * ``D <= x``: the receiver commits; the ``k - 1`` requestors were
      delayed by ``D``; total ``(k - 1) * D``.
    * ``D >  x``: the ``k - 1`` requestors are aborted at ``x``; total
      ``(k - 1) * (x + B)``.  (For ``k = 2`` this is the classic
      ski-rental cost ``x + B``.)

In both variants the offline optimum with foresight is
``OPT(D) = min((k - 1) * D, B)``; for ``k = 2`` this is the paper's
``min(D, B)`` / ``min(B, (k-1)D)``.  For requestor-aborts chains this
matches the normalization used in the Theorem 3 Lagrangian (its boundary
term divides by ``B``); see DESIGN.md "Known paper typos".

No optimal policy ever delays past ``B / (k - 1)``: beyond that point
even a certain commit costs more than an immediate abort.  All policy
supports therefore live in ``[0, B / (k - 1)]``.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidParameterError

__all__ = ["ConflictKind", "ConflictModel"]


class ConflictKind(enum.Enum):
    """Which transaction a conflict resolution aborts.

    ``REQUESTOR_WINS``: the receiver is aborted (the requestor takes
    ownership) — the policy delays *the receiver's own abort*.

    ``REQUESTOR_ABORTS``: the requestor(s) are aborted — the policy
    delays *the requestors' abort* while the receiver runs.
    """

    REQUESTOR_WINS = "requestor_wins"
    REQUESTOR_ABORTS = "requestor_aborts"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class ConflictModel:
    """A parametrized instance of the transactional conflict problem.

    Parameters
    ----------
    kind:
        Conflict resolution strategy (:class:`ConflictKind`).
    B:
        Fixed abort cost (> 0).  In practice this is the time the aborted
        transaction has already executed plus a fixed cleanup cost
        (paper, footnote 1).
    k:
        Conflict chain size, ``k >= 2``.  ``k - 1`` transactions wait on
        the receiver.
    """

    kind: ConflictKind
    B: float
    k: int = 2

    def __post_init__(self) -> None:
        if not isinstance(self.kind, ConflictKind):
            raise InvalidParameterError(
                f"kind must be a ConflictKind, got {self.kind!r}"
            )
        if not (isinstance(self.B, (int, float)) and math.isfinite(self.B)):
            raise InvalidParameterError(f"B must be a finite number, got {self.B!r}")
        if self.B <= 0:
            raise InvalidParameterError(f"abort cost B must be positive, got {self.B}")
        if not isinstance(self.k, int) or isinstance(self.k, bool):
            raise InvalidParameterError(f"chain size k must be an int, got {self.k!r}")
        if self.k < 2:
            raise InvalidParameterError(f"chain size k must be >= 2, got {self.k}")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def waiters(self) -> int:
        """Number of transactions delayed while the receiver runs."""
        return self.k - 1

    @property
    def delay_cap(self) -> float:
        """``B / (k - 1)`` — the largest delay any optimal policy uses."""
        return self.B / (self.k - 1)

    # ------------------------------------------------------------------
    # Cost model
    # ------------------------------------------------------------------
    def cost(self, delay: float, remaining: float) -> float:
        """Conflict cost when the policy delays by ``delay`` and the
        receiver needed ``remaining`` more steps to commit.

        Follows Section 4 exactly; at the knife edge ``remaining ==
        delay`` the receiver *commits* in the requestor-wins convention
        of Section 4.1 ("If D <= x, then transaction T1 commits at or
        before x").  Note the requestor-aborts reduction in Section 4.2
        adopts the opposite tie-break (``x = D`` aborts) to align day
        indices with ski rental; the tie is a measure-zero event for
        every continuous policy, and we use the uniform ``D <= x``
        convention throughout for consistency.
        """
        self._check_cost_args(delay, remaining)
        if remaining <= delay:
            return self.waiters * remaining
        if self.kind is ConflictKind.REQUESTOR_WINS:
            return self.k * delay + self.B
        return self.waiters * (delay + self.B)

    def cost_vec(
        self, delay: np.ndarray | float, remaining: np.ndarray | float
    ) -> np.ndarray:
        """Vectorized :meth:`cost` over NumPy arrays (broadcasting)."""
        x = np.asarray(delay, dtype=float)
        d = np.asarray(remaining, dtype=float)
        if np.any(x < 0) or np.any(d < 0):
            raise InvalidParameterError("delay and remaining must be >= 0")
        commit = d <= x
        commit_cost = self.waiters * d
        if self.kind is ConflictKind.REQUESTOR_WINS:
            abort_cost = self.k * x + self.B
        else:
            abort_cost = self.waiters * (x + self.B)
        return np.where(commit, commit_cost, abort_cost)

    def opt(self, remaining: float) -> float:
        """Offline optimum with foresight: ``min((k - 1) * D, B)``."""
        if remaining < 0:
            raise InvalidParameterError(f"remaining must be >= 0, got {remaining}")
        return min(self.waiters * remaining, self.B)

    def opt_vec(self, remaining: np.ndarray | float) -> np.ndarray:
        """Vectorized :meth:`opt`."""
        d = np.asarray(remaining, dtype=float)
        if np.any(d < 0):
            raise InvalidParameterError("remaining must be >= 0")
        return np.minimum(self.waiters * d, self.B)

    def ratio(self, delay: float, remaining: float) -> float:
        """Pointwise competitive ratio ``cost / opt`` (``inf`` at D = 0
        with a positive-cost decision, 1.0 at the 0/0 corner)."""
        c = self.cost(delay, remaining)
        o = self.opt(remaining)
        if o == 0.0:
            return 1.0 if c == 0.0 else math.inf
        return c / o

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def with_abort_cost(self, B: float) -> "ConflictModel":
        """A copy of this model with a different abort cost (used by the
        backoff wrapper of Corollary 2)."""
        return ConflictModel(self.kind, B, self.k)

    def with_chain(self, k: int) -> "ConflictModel":
        """A copy of this model with a different chain size."""
        return ConflictModel(self.kind, self.B, k)

    @staticmethod
    def _check_cost_args(delay: float, remaining: float) -> None:
        if not math.isfinite(delay) or delay < 0:
            raise InvalidParameterError(
                f"delay must be finite and >= 0, got {delay}"
            )
        if not math.isfinite(remaining) or remaining < 0:
            raise InvalidParameterError(
                f"remaining must be finite and >= 0, got {remaining}"
            )

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.kind.value} conflict, chain k={self.k}, abort cost "
            f"B={self.B:g} (delay cap {self.delay_cap:g})"
        )
