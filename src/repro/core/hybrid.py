"""Hybrid requestor-wins / requestor-aborts resolution (Section 1,
"Implications").

The paper observes a crossover: for two-transaction conflicts the
requestor-aborts optimum (``e/(e-1)``) beats the requestor-wins optimum
(2), but for chains ``k >= 3`` requestor-wins (ratio ``R/(R-1)`` -> 2
from... decreasing toward ``e/(e-1)``) beats requestor-aborts (ratio
``E/(E-1)``, *increasing* with k).  "This suggests that a hybrid
strategy, which can alternate between the two, would perform best."

:class:`HybridResolver` implements that hybrid: per conflict it chooses
the resolution *strategy* (which side aborts) by comparing the
closed-form optimal ratios at the observed chain size, then delegates
delay selection to the corresponding optimal policy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.model import ConflictKind, ConflictModel
from repro.core.policy import DelayPolicy
from repro.core.ratios import rand_ra_ratio, rand_rw_optimal_ratio
from repro.core.requestor_aborts import optimal_requestor_aborts
from repro.core.requestor_wins import _check_bk, optimal_requestor_wins
from repro.rngutil import ensure_rng

__all__ = ["HybridResolver", "HybridDecision"]


@dataclass(frozen=True)
class HybridDecision:
    """One hybrid resolution: which side aborts, with what grace period."""

    kind: ConflictKind
    delay: float
    policy: DelayPolicy
    expected_ratio: float


class HybridResolver:
    """Choose RW vs RA per conflict, then the optimal delay for it.

    Parameters
    ----------
    B:
        Abort cost.
    mu:
        Optional known mean of the remaining-time distribution; passed to
        the constrained policy factories when inside their regimes.
    allow_switching:
        When False, behaves as a fixed-kind resolver (for ablations that
        pin the strategy while keeping the same code path).
    pinned_kind:
        The kind used when ``allow_switching`` is False.
    """

    name = "HYBRID"

    def __init__(
        self,
        B: float,
        mu: float | None = None,
        *,
        allow_switching: bool = True,
        pinned_kind: ConflictKind = ConflictKind.REQUESTOR_ABORTS,
    ) -> None:
        _check_bk(B, 2)
        self.B = float(B)
        self.mu = mu
        self.allow_switching = allow_switching
        self.pinned_kind = pinned_kind
        self._policy_cache: dict[tuple[ConflictKind, int], DelayPolicy] = {}

    def preferred_kind(self, k: int) -> ConflictKind:
        """The strategy with the smaller optimal unconstrained ratio at
        chain size ``k`` (RA at k = 2, RW at k >= 3)."""
        _check_bk(self.B, k)
        if not self.allow_switching:
            return self.pinned_kind
        if rand_ra_ratio(k) <= rand_rw_optimal_ratio(k):
            return ConflictKind.REQUESTOR_ABORTS
        return ConflictKind.REQUESTOR_WINS

    def policy_for(self, k: int) -> DelayPolicy:
        """The optimal policy for the preferred kind at chain size k."""
        kind = self.preferred_kind(k)
        key = (kind, k)
        cached = self._policy_cache.get(key)
        if cached is None:
            if kind is ConflictKind.REQUESTOR_ABORTS:
                cached = optimal_requestor_aborts(self.B, k, self.mu)
            else:
                cached = optimal_requestor_wins(self.B, k, self.mu)
            self._policy_cache[key] = cached
        return cached

    def resolve(
        self, k: int, rng: np.random.Generator | int | None = None
    ) -> HybridDecision:
        """Make one hybrid decision for a conflict of chain size ``k``."""
        gen = ensure_rng(rng)
        kind = self.preferred_kind(k)
        policy = self.policy_for(k)
        ratio = getattr(policy, "competitive_ratio", float("nan"))
        return HybridDecision(kind, policy.sample(gen), policy, ratio)

    def model_for(self, k: int) -> ConflictModel:
        """The conflict model the chosen strategy is evaluated under."""
        return ConflictModel(self.preferred_kind(k), self.B, k)
