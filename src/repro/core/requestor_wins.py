"""Optimal policies for the requestor-wins conflict problem (Section 5).

In a requestor-wins system the *receiver* transaction is the one that
will be aborted; the policy decides how long the receiver may keep
delaying the requestor's coherence message before giving up.  The cost
model is ``(k-1)D`` on commit and ``kx + B`` on abort (Section 4.1) —
a *new* ski-rental variant whose optimal strategies differ from the
classic ones:

* Theorem 4 — optimal deterministic: delay exactly ``B/(k-1)``;
  competitive ratio ``2 + 1/(k-1)``.
* Theorem 5 — optimal randomized, ``k = 2``: **uniform on [0, B)**;
  ratio 2.  With known mean µ (µ/B below threshold ``2(ln4 - 1)``):
  ``p(x) = ln((B+x)/B) / (B(ln4 - 1))``; ratio ``1 + µ/(2B(ln4-1))``.
* Theorem 6 — optimal randomized, ``k >= 3``: polynomial densities
  proportional to ``(B+x)^{k-2}`` (unconstrained) or
  ``(B+x)^{k-2} - B^{k-2}`` (mean-constrained).

Numerical-stability note: with ``N = k^{k-1}`` and ``M = (k-1)^{k-1}``
the Theorem 6 coefficients overflow for large k, so we express all
formulas through the bounded ratio ``R = N/M = (k/(k-1))^{k-1}``
(monotonically increasing to ``e``); e.g. the unconstrained competitive
ratio ``N/(N-M)`` becomes ``R/(R-1)``.

Correction to the published Theorem 6 (verified in
``tests/test_policies_rw.py`` and DESIGN.md): the printed constrained
PDF is negative at ``x = 0`` and implies a Lagrange corner with
``lambda_1 < 1``, which is impossible for a competitive ratio.
Re-deriving the positivity constraint ``p(0) >= 0`` from the paper's own
differential-equation solution gives the corner
``lambda_2* = (k-2)M / (2B(N-2M))`` (the paper's value is 4x too large),
whence

    p(x)  = (k-1) / (B(R-2)) * (((B+x)/B)^{k-2} - 1)
    ratio = 1 + mu*(k-2) / (2B(R-2))
    regime: mu/B < 2(R-2) / ((k-2)(R-1))

This corrected form (a) vanishes at 0 like every other constrained
optimum in the paper, (b) integrates to 1, (c) satisfies the
equalization identity ``Cost(p, y) = (k-1) y (1 + lambda_2 y)`` on the
whole support, and (d) converges to the Theorem 5 log-form as
``k -> 2``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core._continuous import ContinuousDelayPolicy
from repro.core.model import ConflictKind, ConflictModel
from repro.core.policy import DelayPolicy, DeterministicDelayPolicy
from repro.errors import InvalidParameterError, RegimeError

__all__ = [
    "DeterministicRW",
    "UniformRW",
    "MeanConstrainedRW",
    "PolynomialRW",
    "optimal_requestor_wins",
    "rw_chain_ratio_R",
]

#: ln(4) - 1, the normalization constant of the Theorem 5 log-density.
_LN4M1 = math.log(4.0) - 1.0


def _check_bk(B: float, k: int) -> tuple[float, int]:
    if not (isinstance(B, (int, float)) and math.isfinite(B) and B > 0):
        raise InvalidParameterError(f"B must be finite and positive, got {B!r}")
    if not isinstance(k, int) or isinstance(k, bool) or k < 2:
        raise InvalidParameterError(f"k must be an integer >= 2, got {k!r}")
    return float(B), k


def rw_chain_ratio_R(k: int) -> float:
    """``R = (k/(k-1))^{k-1} = k^{k-1}/(k-1)^{k-1}``, computed stably.

    ``R`` increases monotonically from 2 (k = 2) toward ``e``; every
    Theorem 6 quantity is a rational function of ``R``.
    """
    _check_bk(1.0, k)
    return math.exp((k - 1) * math.log(k / (k - 1)))


class DeterministicRW(DeterministicDelayPolicy):
    """Theorem 4: the optimal deterministic requestor-wins policy.

    Delays the receiver's abort by exactly ``B / (k-1)``, achieving
    competitive ratio ``2 + 1/(k-1)`` (3 for ``k = 2``).
    """

    def __init__(self, B: float, k: int = 2) -> None:
        B, k = _check_bk(B, k)
        super().__init__(B / (k - 1))
        self.B = B
        self.k = k
        self.name = "DET"

    @property
    def competitive_ratio(self) -> float:
        """Closed-form ratio ``2 + 1/(k-1)`` from Theorem 4."""
        return 2.0 + 1.0 / (self.k - 1)

    def model(self) -> ConflictModel:
        """The conflict model this policy was built for."""
        return ConflictModel(ConflictKind.REQUESTOR_WINS, self.B, self.k)


class UniformRW(ContinuousDelayPolicy):
    """Theorem 5 (unconstrained): uniform delay on ``[0, B/(k-1))``.

    The paper's headline result — the optimal randomized requestor-wins
    strategy is *uniform*, in contrast to the exponential density of
    classic ski rental — with competitive ratio exactly 2 for ``k = 2``
    (and at most 2 for ``k > 2``; Theorem 6 gives the tighter optimum
    for ``k >= 3``).
    """

    def __init__(self, B: float, k: int = 2) -> None:
        self.B, self.k = _check_bk(B, k)
        self._lo = 0.0
        self._hi = self.B / (self.k - 1)
        self.name = "RRW"

    def pdf_vec(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        density = (self.k - 1) / self.B
        return np.where(self._in_support(x), density, 0.0)

    def cdf_vec(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        return np.clip(x * (self.k - 1) / self.B, 0.0, 1.0)

    def ppf(self, q: np.ndarray | float) -> np.ndarray:
        q_arr = np.asarray(q, dtype=float)
        if np.any((q_arr < 0.0) | (q_arr > 1.0)):
            raise InvalidParameterError("quantiles must lie in [0, 1]")
        return q_arr * self._hi

    def expected_delay(self) -> float:
        return self._hi / 2.0

    @property
    def competitive_ratio(self) -> float:
        """2 for ``k = 2``; ``2 - (k-2)/(2(k-1))`` upper envelope is not
        reported by the paper, which states ratio 2 for all k — we return
        2 (the guaranteed bound)."""
        return 2.0

    def model(self) -> ConflictModel:
        return ConflictModel(ConflictKind.REQUESTOR_WINS, self.B, self.k)


class MeanConstrainedRW(ContinuousDelayPolicy):
    """Theorem 5 (constrained, ``k = 2``): the log-density policy.

    When the mean µ of the adversary's remaining-time distribution is
    known and ``mu/B < 2(ln4 - 1) ~ 0.7726``, the optimal density is

        p(x) = ln((B + x)/B) / (B (ln4 - 1)),   0 <= x <= B

    with competitive ratio ``1 + mu / (2B(ln4 - 1))``.

    (The paper's theorem statement prints the density as
    ``ln((B+x)/x)``, which does not integrate to 1; the proof's own
    conclusion, and the normalization check
    ``integral ln(1+x/B) dx = B(ln4 - 1)``, give the form used here.)
    """

    def __init__(self, B: float, mu: float, *, strict_regime: bool = True) -> None:
        B, _ = _check_bk(B, 2)
        if not (isinstance(mu, (int, float)) and math.isfinite(mu) and mu > 0):
            raise InvalidParameterError(f"mu must be finite and positive, got {mu!r}")
        if strict_regime and not self.regime_holds(B, mu):
            raise RegimeError(
                f"mean-constrained RW policy requires mu/B < 2(ln4-1) "
                f"~= {2 * _LN4M1:.4f}; got mu/B = {mu / B:.4f} "
                f"(use optimal_requestor_wins() to fall back automatically)"
            )
        self.B = B
        self.k = 2
        self.mu = float(mu)
        self._lo = 0.0
        self._hi = B
        self.name = "RRW(mu)"

    @staticmethod
    def regime_holds(B: float, mu: float) -> bool:
        """Whether the constrained policy beats the unconstrained one."""
        return mu / B < 2.0 * _LN4M1

    def pdf_vec(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        inside = self._in_support(x)
        safe = np.where(inside, x, 0.0)
        vals = np.log1p(safe / self.B) / (self.B * _LN4M1)
        return np.where(inside, vals, 0.0)

    def cdf_vec(self, x: np.ndarray) -> np.ndarray:
        # integral of ln(1 + t/B) dt = (B + x) ln((B+x)/B) - x
        x = np.asarray(x, dtype=float)
        clipped = np.clip(x, 0.0, self.B)
        raw = ((self.B + clipped) * np.log1p(clipped / self.B) - clipped) / (
            self.B * _LN4M1
        )
        return np.where(x >= self.B, 1.0, np.where(x <= 0.0, 0.0, raw))

    @property
    def competitive_ratio(self) -> float:
        """``1 + mu/(2B(ln4 - 1))`` from Theorem 5."""
        return 1.0 + self.mu / (2.0 * self.B * _LN4M1)

    @property
    def lagrange_lambda2(self) -> float:
        """Slope of the equalized ratio: ``Cost(p, y)/y = 1 + lambda2*y``."""
        return 1.0 / (2.0 * self.B * _LN4M1)

    def model(self) -> ConflictModel:
        return ConflictModel(ConflictKind.REQUESTOR_WINS, self.B, 2)


class PolynomialRW(ContinuousDelayPolicy):
    """Theorem 6: optimal randomized requestor-wins policies, ``k >= 3``.

    Unconstrained (``mu=None``)::

        p(x)  = (k-1)/(B(R-1)) * ((B+x)/B)^{k-2},    0 <= x <= B/(k-1)
        ratio = R/(R-1)                              (-> e/(e-1) as k grows)

    Mean-constrained (corrected; see module docstring)::

        p(x)  = (k-1)/(B(R-2)) * (((B+x)/B)^{k-2} - 1)
        ratio = 1 + mu (k-2) / (2B(R-2))
        valid when mu/B < 2(R-2)/((k-2)(R-1))

    where ``R = (k/(k-1))^{k-1}``.
    """

    def __init__(
        self,
        B: float,
        k: int,
        mu: float | None = None,
        *,
        strict_regime: bool = True,
    ) -> None:
        B, k = _check_bk(B, k)
        if k < 3:
            raise InvalidParameterError(
                "PolynomialRW requires k >= 3 (use UniformRW / "
                "MeanConstrainedRW for k = 2)"
            )
        if mu is not None:
            if not (isinstance(mu, (int, float)) and math.isfinite(mu) and mu > 0):
                raise InvalidParameterError(
                    f"mu must be finite and positive, got {mu!r}"
                )
            if strict_regime and not self.regime_holds(B, k, mu):
                raise RegimeError(
                    f"mean-constrained PolynomialRW requires mu/B < "
                    f"{self.regime_threshold(k):.4f} for k={k}; got "
                    f"{mu / B:.4f}"
                )
        self.B = B
        self.k = k
        self.mu = None if mu is None else float(mu)
        self.R = rw_chain_ratio_R(k)
        self._lo = 0.0
        self._hi = B / (k - 1)
        self.name = "RRW" if mu is None else "RRW(mu)"

    # -- regime ----------------------------------------------------------
    @staticmethod
    def regime_threshold(k: int) -> float:
        """Upper bound on ``mu/B`` for the constrained form to win."""
        R = rw_chain_ratio_R(k)
        return 2.0 * (R - 2.0) / ((k - 2) * (R - 1.0))

    @classmethod
    def regime_holds(cls, B: float, k: int, mu: float) -> bool:
        return mu / B < cls.regime_threshold(k)

    # -- distribution ------------------------------------------------------
    @property
    def constrained(self) -> bool:
        return self.mu is not None

    def pdf_vec(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        inside = self._in_support(x)
        safe = np.where(inside, x, 0.0)
        base = np.power(1.0 + safe / self.B, self.k - 2)
        if self.constrained:
            vals = (self.k - 1) / (self.B * (self.R - 2.0)) * (base - 1.0)
        else:
            vals = (self.k - 1) / (self.B * (self.R - 1.0)) * base
        return np.where(inside, vals, 0.0)

    def cdf_vec(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        clipped = np.clip(x, self._lo, self._hi)
        ratio_pow = np.power(1.0 + clipped / self.B, self.k - 1)
        if self.constrained:
            raw = (ratio_pow - 1.0 - (self.k - 1) * clipped / self.B) / (
                self.R - 2.0
            )
        else:
            raw = (ratio_pow - 1.0) / (self.R - 1.0)
        return np.where(x >= self._hi, 1.0, np.where(x <= 0.0, 0.0, raw))

    def ppf(self, q: np.ndarray | float) -> np.ndarray:
        if self.constrained:
            return super().ppf(q)  # numeric inversion
        q_arr = np.asarray(q, dtype=float)
        if np.any((q_arr < 0.0) | (q_arr > 1.0)):
            raise InvalidParameterError("quantiles must lie in [0, 1]")
        # closed-form inverse of ((1+x/B)^{k-1} - 1)/(R-1)
        return self.B * (
            np.power(1.0 + q_arr * (self.R - 1.0), 1.0 / (self.k - 1)) - 1.0
        )

    # -- analysis ----------------------------------------------------------
    @property
    def competitive_ratio(self) -> float:
        if self.constrained:
            assert self.mu is not None
            return 1.0 + self.mu * (self.k - 2) / (2.0 * self.B * (self.R - 2.0))
        return self.R / (self.R - 1.0)

    @property
    def lagrange_lambda2(self) -> float:
        """Slope of the equalized ratio identity (0 when unconstrained)."""
        if not self.constrained:
            return 0.0
        return (self.k - 2) / (2.0 * self.B * (self.R - 2.0))

    def model(self) -> ConflictModel:
        return ConflictModel(ConflictKind.REQUESTOR_WINS, self.B, self.k)


def optimal_requestor_wins(
    B: float,
    k: int = 2,
    mu: float | None = None,
    *,
    deterministic: bool = False,
) -> DelayPolicy:
    """Factory for the paper's optimal requestor-wins policy.

    Picks the right theorem for the parameters:

    * ``deterministic=True`` -> Theorem 4 fixed delay ``B/(k-1)``.
    * ``k = 2``: uniform (Thm 5); with ``mu`` inside the regime, the
      log-density constrained policy (Thm 5).
    * ``k >= 3``: polynomial (Thm 6), constrained when ``mu`` is inside
      the regime.

    Outside the mean regime the factory silently falls back to the
    unconstrained optimum, mirroring the theorem statements
    ("otherwise, the unconstrained strategy is optimal").
    """
    B, k = _check_bk(B, k)
    if deterministic:
        return DeterministicRW(B, k)
    if k == 2:
        if mu is not None and MeanConstrainedRW.regime_holds(B, mu):
            return MeanConstrainedRW(B, mu)
        return UniformRW(B, 2)
    if mu is not None and PolynomialRW.regime_holds(B, k, mu):
        return PolynomialRW(B, k, mu)
    return PolynomialRW(B, k)
