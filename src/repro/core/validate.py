"""One-stop diagnostics for user-defined delay policies.

The extension surface of this library is "write your own
:class:`~repro.core.policy.DelayPolicy`" (see
``examples/custom_policy.py``); this module gives such policies the same
scrutiny the shipped ones get from the test suite, as a single call:

    report = validate_policy(my_policy, model)
    print(report.render())
    assert report.ok

Checks: support sanity, PDF normalization and non-negativity, CDF
monotonicity and limits, sampler-vs-CDF agreement (a coarse KS
statistic), delays within the model cap, and the numeric competitive
ratio (reported, and compared against the policy's own
``competitive_ratio`` attribute when present).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.model import ConflictModel
from repro.errors import ExperimentTimeoutError
from repro.core.policy import DelayPolicy
from repro.core.verify import competitive_ratio
from repro.rngutil import ensure_rng

__all__ = ["CheckResult", "ValidationReport", "validate_policy"]


@dataclass(frozen=True)
class CheckResult:
    """One named check's outcome."""

    name: str
    passed: bool
    detail: str = ""


@dataclass
class ValidationReport:
    """All checks plus the measured ratio."""

    policy_name: str
    checks: list[CheckResult] = field(default_factory=list)
    numeric_ratio: float = math.nan
    claimed_ratio: float | None = None

    @property
    def ok(self) -> bool:
        return all(c.passed for c in self.checks)

    def failures(self) -> list[CheckResult]:
        return [c for c in self.checks if not c.passed]

    def render(self) -> str:
        lines = [f"policy {self.policy_name!r}:"]
        for check in self.checks:
            mark = "PASS" if check.passed else "FAIL"
            suffix = f" ({check.detail})" if check.detail else ""
            lines.append(f"  [{mark}] {check.name}{suffix}")
        lines.append(f"  numeric competitive ratio: {self.numeric_ratio:.4f}")
        if self.claimed_ratio is not None:
            lines.append(f"  claimed ratio:             {self.claimed_ratio:.4f}")
        return "\n".join(lines)


def validate_policy(
    policy: DelayPolicy,
    model: ConflictModel,
    *,
    samples: int = 20_000,
    rng=None,
    tolerance: float = 5e-3,
) -> ValidationReport:
    """Run the standard battery of checks against ``policy``.

    Deterministic policies skip the density checks; discrete policies
    (with a ``_pmf``) skip the continuous-only ones.
    """
    gen = ensure_rng(rng)
    report = ValidationReport(policy_name=policy.name)
    add = report.checks.append

    # -- support ----------------------------------------------------------
    lo, hi = policy.support
    support_ok = (
        math.isfinite(lo) and math.isfinite(hi) and 0.0 <= lo <= hi
    )
    add(CheckResult("support is a finite interval in [0, inf)", support_ok,
                    f"[{lo:g}, {hi:g}]"))
    cap_ok = hi <= model.delay_cap * (1 + 1e-9)
    add(
        CheckResult(
            "support within the B/(k-1) cap",
            cap_ok,
            f"hi={hi:g} vs cap={model.delay_cap:g}"
            + ("" if cap_ok else " — delays beyond the cap are dominated"),
        )
    )

    is_continuous = hasattr(policy, "pdf_vec") and not policy.is_deterministic()
    if is_continuous and support_ok and hi > lo:
        xs = np.linspace(lo, hi, 8193)
        pdf = policy.pdf_vec(xs)
        add(CheckResult("pdf non-negative", bool(np.all(pdf >= -1e-12))))
        integral = float(np.trapezoid(pdf, xs))
        add(
            CheckResult(
                "pdf integrates to 1",
                abs(integral - 1.0) <= 10 * tolerance,
                f"integral={integral:.5f}",
            )
        )
        cdf = policy.cdf_vec(xs)
        add(
            CheckResult(
                "cdf monotone, 0 -> 1",
                bool(
                    np.all(np.diff(cdf) >= -1e-12)
                    and abs(cdf[0]) < 1e-6
                    and abs(cdf[-1] - 1.0) < 1e-6
                ),
            )
        )

    # -- sampling ---------------------------------------------------------
    if not policy.is_deterministic():
        draws = policy.sample_many(samples, gen)
        in_range = bool(
            np.all(draws >= lo - 1e-9) and np.all(draws <= hi + 1e-9)
        )
        add(CheckResult("samples within support", in_range))
        # coarse KS statistic against the policy's own CDF
        order = np.sort(draws)
        empirical = (np.arange(1, samples + 1)) / samples
        theoretical = np.array([policy.cdf(float(v)) for v in order[:: max(1, samples // 512)]])
        emp_sub = empirical[:: max(1, samples // 512)]
        ks = float(np.max(np.abs(theoretical - emp_sub)))
        add(
            CheckResult(
                "sampler agrees with cdf (KS)",
                ks < 0.03,
                f"KS~{ks:.4f}",
            )
        )
    else:
        x0 = policy.sample(gen)
        add(CheckResult("deterministic sample within support",
                        lo - 1e-9 <= x0 <= hi + 1e-9))

    # -- ratio --------------------------------------------------------------
    # mean-constrained policies (they expose `mu`) promise their ratio
    # against mean-mu adversaries; price them with the constrained
    # evaluator, everything else with the unconditional sup
    try:
        mu = getattr(policy, "mu", None)
        if isinstance(mu, (int, float)) and math.isfinite(mu) and mu > 0:
            from repro.core.verify import constrained_competitive_ratio

            result = constrained_competitive_ratio(policy, model, float(mu))
            ratio_name = f"numeric ratio (mean-{mu:g} adversaries) matches claimed"
        else:
            result = competitive_ratio(policy, model)
            ratio_name = "numeric ratio matches claimed"
        report.numeric_ratio = result.ratio
        claimed = getattr(policy, "competitive_ratio", None)
        if isinstance(claimed, (int, float)) and math.isfinite(claimed):
            report.claimed_ratio = float(claimed)
            add(
                CheckResult(
                    ratio_name,
                    result.ratio <= claimed * (1 + 10 * tolerance),
                    f"numeric={result.ratio:.4f} claimed={claimed:.4f}",
                )
            )
    except ExperimentTimeoutError:
        raise  # the watchdog budget always propagates (never a "check")
    except Exception as exc:  # pragma: no cover - diagnostic path
        add(CheckResult("competitive ratio computable", False, repr(exc)))

    return report
