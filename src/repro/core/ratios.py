"""Closed-form competitive ratios, regime thresholds, and abort
probabilities for every theorem in the paper.

These are the values the numeric verification machinery
(:mod:`repro.core.verify`) and the ``tab_ratios`` /
``tab_abort_prob`` benchmark tables check against.
"""

from __future__ import annotations

import math

from repro.core.requestor_aborts import ra_chain_E
from repro.core.requestor_wins import rw_chain_ratio_R
from repro.errors import InvalidParameterError

__all__ = [
    "E_OVER_EM1",
    "LN4_MINUS_1",
    "det_rw_ratio",
    "det_ra_ratio",
    "rand_rw_uniform_ratio",
    "rand_rw_optimal_ratio",
    "rand_ra_ratio",
    "constrained_rw_ratio",
    "constrained_ra_ratio",
    "rw_mean_regime_threshold",
    "ra_mean_regime_threshold",
    "abort_probability_rw",
    "abort_probability_ra",
    "corollary1_bound",
]

#: ``e / (e - 1)`` — the classic randomized ski-rental ratio.
E_OVER_EM1 = math.e / (math.e - 1.0)

#: ``ln 4 - 1`` — normalization constant of the Theorem 5 log-density.
LN4_MINUS_1 = math.log(4.0) - 1.0


def _check_k(k: int) -> int:
    if not isinstance(k, int) or isinstance(k, bool) or k < 2:
        raise InvalidParameterError(f"k must be an integer >= 2, got {k!r}")
    return k


def det_rw_ratio(k: int = 2) -> float:
    """Theorem 4: deterministic requestor-wins ratio ``2 + 1/(k-1)``."""
    return 2.0 + 1.0 / (_check_k(k) - 1)


def det_ra_ratio(k: int = 2) -> float:
    """Deterministic requestor-aborts ratio: 2 at ``k = 2`` (classic ski
    rental); ``k`` for chains under ``OPT = min((k-1)D, B)``."""
    return float(_check_k(k))


def rand_rw_uniform_ratio(k: int = 2) -> float:
    """Theorem 5: the uniform strategy's guaranteed ratio (2 for all k)."""
    _check_k(k)
    return 2.0


def rand_rw_optimal_ratio(k: int = 2) -> float:
    """The optimal unconstrained randomized requestor-wins ratio.

    2 for ``k = 2`` (Theorem 5); ``R/(R-1)`` with
    ``R = (k/(k-1))^{k-1}`` for ``k >= 3`` (Theorem 6), decreasing
    toward ``e/(e-1)``.
    """
    k = _check_k(k)
    if k == 2:
        return 2.0
    R = rw_chain_ratio_R(k)
    return R / (R - 1.0)


def rand_ra_ratio(k: int = 2) -> float:
    """Theorems 1/3: unconstrained randomized requestor-aborts ratio
    ``E/(E-1)`` with ``E = e^{1/(k-1)}`` (increases with k)."""
    E = ra_chain_E(_check_k(k))
    return E / (E - 1.0)


def constrained_rw_ratio(B: float, mu: float, k: int = 2) -> float:
    """Theorems 5/6: mean-constrained requestor-wins ratio.

    ``1 + mu/(2B(ln4-1))`` at ``k = 2``;
    ``1 + mu(k-2)/(2B(R-2))`` for ``k >= 3`` (corrected Theorem 6).
    Only meaningful inside the regime (see
    :func:`rw_mean_regime_threshold`).
    """
    k = _check_k(k)
    if k == 2:
        return 1.0 + mu / (2.0 * B * LN4_MINUS_1)
    R = rw_chain_ratio_R(k)
    return 1.0 + mu * (k - 2) / (2.0 * B * (R - 2.0))


def constrained_ra_ratio(B: float, mu: float, k: int = 2) -> float:
    """Theorems 2/3: mean-constrained requestor-aborts ratio
    ``1 + mu(k-1)/(2BZ)`` with ``Z = (k-1)(e^{1/(k-1)} - 1) - 1``
    (``1 + mu/(2B(e-2))`` at ``k = 2``)."""
    k = _check_k(k)
    E = ra_chain_E(k)
    Z = (k - 1) * (E - 1.0) - 1.0
    return 1.0 + mu * (k - 1) / (2.0 * B * Z)


def rw_mean_regime_threshold(k: int = 2) -> float:
    """Largest ``mu/B`` for which the constrained RW policy wins.

    ``2(ln4 - 1)`` at ``k = 2``; ``2(R-2)/((k-2)(R-1))`` for
    ``k >= 3``.
    """
    k = _check_k(k)
    if k == 2:
        return 2.0 * LN4_MINUS_1
    R = rw_chain_ratio_R(k)
    return 2.0 * (R - 2.0) / ((k - 2) * (R - 1.0))


def ra_mean_regime_threshold(k: int = 2) -> float:
    """Largest ``mu/B`` for which the constrained RA policy wins:
    ``2Z/((k-1)(E-1))`` (``2(e-2)/(e-1)`` at ``k = 2``)."""
    k = _check_k(k)
    E = ra_chain_E(k)
    Z = (k - 1) * (E - 1.0) - 1.0
    return 2.0 * Z / ((k - 1) * (E - 1.0))


def abort_probability_rw(B: float, k: int = 2) -> float:
    """Section 5.3: P(abort) for the constrained RW policy when the
    adversary plays its best response ``y = B`` (``k = 2``).

    ``1 - CDF(B)`` where CDF is the log-density's; the paper reports the
    approximation ``1 - 1.8/B`` via ``p(B) = ln2/(B(ln4-1))``.  We return
    the exact value ``1 - F(B^-)`` = 0 at the right endpoint is not
    meaningful, so — following the paper — this is the probability that
    the drawn delay is *strictly less* than the remaining time at the
    density level: the paper evaluates ``1 - p(B)`` treating ``p`` as a
    per-step probability; we reproduce that convention for the table.
    """
    _check_k(k)
    if k != 2:
        raise InvalidParameterError("Section 5.3 analyzes k = 2 only")
    return 1.0 - math.log(2.0) / (B * LN4_MINUS_1)


def abort_probability_ra(B: float, k: int = 2) -> float:
    """Section 5.3: ``1 - p(B)`` for the constrained RA policy,
    ``p(B) = (e-1)/(B(e-2))`` -> approximately ``1 - 2.4/B``."""
    _check_k(k)
    if k != 2:
        raise InvalidParameterError("Section 5.3 analyzes k = 2 only")
    return 1.0 - (math.e - 1.0) / (B * (math.e - 2.0))


def corollary1_bound(waste: float) -> float:
    """Corollary 1: global throughput-competitiveness bound
    ``(2w + 1)/(w + 1)`` given the offline algorithm's waste ``w(S)``.

    Monotone in ``w`` and always < 2.
    """
    if waste < 0.0 or not math.isfinite(waste):
        raise InvalidParameterError(f"waste must be finite and >= 0, got {waste}")
    return (2.0 * waste + 1.0) / (waste + 1.0)
