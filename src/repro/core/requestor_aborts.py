"""Optimal policies for the requestor-aborts conflict problem.

In a requestor-aborts system the receiver T1 keeps running and the
policy decides how long to stall the ``k - 1`` requestors before
aborting *them*.  The cost model is ``(k-1)D`` on commit and
``(k-1)(x + B)`` on abort (Section 4.2), which for ``k = 2`` **is** the
classic ski-rental problem:

* Theorem 1 — the discrete randomized ski-rental strategy of Karlin et
  al., competitive ratio ``e/(e-1)``; continuous analogue
  ``p(x) = e^{x/B} / (B(e-1))`` on ``[0, B]``.
* Theorem 2 (Khanafer et al.) — mean-constrained,
  ``p(x) = (e^{x/B} - 1)/(B(e-2))``; ratio ``1 + mu/(2B(e-2))`` when
  ``mu/B < 2(e-2)/(e-1)``.  (The printed PDF
  ``1/(B(e-2)) e^{x/B} - 1`` does not normalize; the form here does and
  is the k = 2 case of Theorem 3.)
* Theorem 3 — chains of size ``k > 2``; with ``E = e^{1/(k-1)}``:

      unconstrained: p(x) = e^{x/B} / (B(E-1)),    ratio E/(E-1)
      constrained:   p(x) = (k-1)(e^{x/B} - 1) / (B Z),  Z = (k-1)(E-1) - 1
                     ratio 1 + mu (k-1) / (2 B Z)
                     valid when mu/B < 2 Z / ((k-1)(E-1))

  on support ``[0, B/(k-1)]``.  (We state the regime as the paper's
  proof derives it — ``C2 < C1`` — rather than the garbled inequality in
  the theorem statement; the two coincide after simplification.)

All chain formulas use the offline baseline ``OPT(D) = min((k-1)D, B)``
(the convention of the paper's Theorem 3 Lagrangian; see DESIGN.md).
The optimal deterministic strategy under this baseline waits
``B/(k-1)`` and is ``k``-competitive (2-competitive at ``k = 2``,
matching classic ski rental).
"""

from __future__ import annotations

import math

import numpy as np

from repro.core._continuous import ContinuousDelayPolicy
from repro.core.model import ConflictKind, ConflictModel
from repro.core.policy import DelayPolicy, DeterministicDelayPolicy
from repro.core.requestor_wins import _check_bk
from repro.errors import InvalidParameterError, RegimeError
from repro.rngutil import ensure_rng

__all__ = [
    "DeterministicRA",
    "ExponentialRA",
    "MeanConstrainedRA",
    "ChainRA",
    "DiscreteSkiRentalRA",
    "optimal_requestor_aborts",
    "ra_chain_E",
]


def ra_chain_E(k: int) -> float:
    """``E = e^{1/(k-1)}`` — the chain analogue of ``e`` in Theorem 3."""
    _check_bk(1.0, k)
    return math.exp(1.0 / (k - 1))


class DeterministicRA(DeterministicDelayPolicy):
    """Optimal deterministic requestor-aborts policy: wait ``B/(k-1)``.

    For ``k = 2`` this is the classic buy-on-day-B ski-rental rule with
    ratio 2; for chains it is ``k``-competitive against
    ``OPT = min((k-1)D, B)``.
    """

    def __init__(self, B: float, k: int = 2) -> None:
        B, k = _check_bk(B, k)
        super().__init__(B / (k - 1))
        self.B = B
        self.k = k
        self.name = "DET_RA"

    @property
    def competitive_ratio(self) -> float:
        return float(self.k)

    def model(self) -> ConflictModel:
        return ConflictModel(ConflictKind.REQUESTOR_ABORTS, self.B, self.k)


class ExponentialRA(ContinuousDelayPolicy):
    """Theorems 1/3 (unconstrained): exponential density ski rental.

    ``p(x) = e^{x/B} / (B(E-1))`` on ``[0, B/(k-1)]`` with
    ``E = e^{1/(k-1)}``; competitive ratio ``E/(E-1)``
    (= ``e/(e-1) ~ 1.582`` at ``k = 2``).
    """

    def __init__(self, B: float, k: int = 2) -> None:
        self.B, self.k = _check_bk(B, k)
        self.E = ra_chain_E(self.k)
        self._lo = 0.0
        self._hi = self.B / (self.k - 1)
        self.name = "RRA"

    def pdf_vec(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        inside = self._in_support(x)
        safe = np.where(inside, x, 0.0)
        vals = np.exp(safe / self.B) / (self.B * (self.E - 1.0))
        return np.where(inside, vals, 0.0)

    def cdf_vec(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        clipped = np.clip(x, 0.0, self._hi)
        raw = np.expm1(clipped / self.B) / (self.E - 1.0)
        return np.where(x >= self._hi, 1.0, np.where(x <= 0.0, 0.0, raw))

    def ppf(self, q: np.ndarray | float) -> np.ndarray:
        q_arr = np.asarray(q, dtype=float)
        if np.any((q_arr < 0.0) | (q_arr > 1.0)):
            raise InvalidParameterError("quantiles must lie in [0, 1]")
        return self.B * np.log1p(q_arr * (self.E - 1.0))

    @property
    def competitive_ratio(self) -> float:
        return self.E / (self.E - 1.0)

    def model(self) -> ConflictModel:
        return ConflictModel(ConflictKind.REQUESTOR_ABORTS, self.B, self.k)


class ChainRA(ContinuousDelayPolicy):
    """Theorem 3 (constrained): mean-aware requestor-aborts chains.

    ``p(x) = (k-1)(e^{x/B} - 1) / (B Z)`` on ``[0, B/(k-1)]`` with
    ``Z = (k-1)(E-1) - 1``; competitive ratio ``1 + mu(k-1)/(2BZ)``,
    valid in the regime ``mu/B < 2Z/((k-1)(E-1))``.

    ``k = 2`` specializes to Theorem 2 (see :class:`MeanConstrainedRA`).
    """

    def __init__(
        self, B: float, k: int, mu: float, *, strict_regime: bool = True
    ) -> None:
        B, k = _check_bk(B, k)
        if not (isinstance(mu, (int, float)) and math.isfinite(mu) and mu > 0):
            raise InvalidParameterError(f"mu must be finite and positive, got {mu!r}")
        if strict_regime and not self.regime_holds(B, k, mu):
            raise RegimeError(
                f"mean-constrained RA policy requires mu/B < "
                f"{self.regime_threshold(k):.4f} for k={k}; got {mu / B:.4f}"
            )
        self.B = B
        self.k = k
        self.mu = float(mu)
        self.E = ra_chain_E(k)
        self.Z = (k - 1) * (self.E - 1.0) - 1.0
        self._lo = 0.0
        self._hi = B / (k - 1)
        self.name = "RRA(mu)"

    # -- regime ----------------------------------------------------------
    @staticmethod
    def regime_threshold(k: int) -> float:
        E = ra_chain_E(k)
        Z = (k - 1) * (E - 1.0) - 1.0
        return 2.0 * Z / ((k - 1) * (E - 1.0))

    @classmethod
    def regime_holds(cls, B: float, k: int, mu: float) -> bool:
        return mu / B < cls.regime_threshold(k)

    # -- distribution ------------------------------------------------------
    def pdf_vec(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        inside = self._in_support(x)
        safe = np.where(inside, x, 0.0)
        vals = (self.k - 1) * np.expm1(safe / self.B) / (self.B * self.Z)
        return np.where(inside, vals, 0.0)

    def cdf_vec(self, x: np.ndarray) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        clipped = np.clip(x, 0.0, self._hi)
        raw = (
            (self.k - 1)
            * (np.expm1(clipped / self.B) - clipped / self.B)
            / self.Z
        )
        return np.where(x >= self._hi, 1.0, np.where(x <= 0.0, 0.0, raw))

    # -- analysis ----------------------------------------------------------
    @property
    def competitive_ratio(self) -> float:
        return 1.0 + self.mu * (self.k - 1) / (2.0 * self.B * self.Z)

    @property
    def lagrange_lambda2(self) -> float:
        return (self.k - 1) / (2.0 * self.B * self.Z)

    def model(self) -> ConflictModel:
        return ConflictModel(ConflictKind.REQUESTOR_ABORTS, self.B, self.k)


class MeanConstrainedRA(ChainRA):
    """Theorem 2 (Khanafer et al.): the ``k = 2`` mean-constrained policy.

    ``p(x) = (e^{x/B} - 1)/(B(e-2))`` on ``[0, B]``; ratio
    ``1 + mu/(2B(e-2))``, valid when ``mu/B < 2(e-2)/(e-1)``.
    """

    def __init__(self, B: float, mu: float, *, strict_regime: bool = True) -> None:
        super().__init__(B, 2, mu, strict_regime=strict_regime)


class DiscreteSkiRentalRA(DelayPolicy):
    """Theorem 1: the discrete randomized ski-rental strategy.

    For integer ``B``, buy skis on day ``i`` (i.e. stall the requestor
    for ``i - 1`` whole days, aborting it at the start of day ``i``)
    with probability

        p(i) = ((B-1)/B)^{B-i} / (B (1 - (1 - 1/B)^B)),   1 <= i <= B.

    Expected cost is ``(e/(e-1)) min(D, B)`` asymptotically in ``B``
    (the exact discrete ratio ``1/(1-(1-1/B)^B)`` increases toward
    ``e/(e-1)`` from below as ``B`` grows — an integer-day adversary is
    slightly weaker than the continuous one).
    """

    def __init__(self, B: int) -> None:
        if not isinstance(B, int) or isinstance(B, bool) or B < 1:
            raise InvalidParameterError(
                f"discrete ski rental needs integer B >= 1, got {B!r}"
            )
        self.B = B
        self.k = 2
        q = (B - 1) / B
        weights = q ** np.arange(B - 1, -1, -1, dtype=float)  # i = 1..B
        self._pmf = weights / weights.sum()
        self._cmf = np.cumsum(self._pmf)
        self.name = "SKI_DISCRETE"

    @property
    def support(self) -> tuple[float, float]:
        return (0.0, float(self.B - 1))

    def pmf(self, day: int) -> float:
        """Probability of buying on day ``day`` (1-indexed)."""
        if not 1 <= day <= self.B:
            return 0.0
        return float(self._pmf[day - 1])

    def cdf(self, x: float) -> float:
        # P(delay <= x): delay for day i is i - 1.
        if x < 0.0:
            return 0.0
        day = min(int(math.floor(x)) + 1, self.B)
        return float(self._cmf[day - 1])

    def sample(self, rng: np.random.Generator | int | None = None) -> float:
        gen = ensure_rng(rng)
        day = int(np.searchsorted(self._cmf, gen.random(), side="right")) + 1
        return float(min(day, self.B) - 1)

    def sample_many(
        self, n: int, rng: np.random.Generator | int | None = None
    ) -> np.ndarray:
        gen = ensure_rng(rng)
        days = np.searchsorted(self._cmf, gen.random(n), side="right") + 1
        return np.minimum(days, self.B).astype(float) - 1.0

    def expected_delay(self) -> float:
        return float(np.dot(self._pmf, np.arange(self.B)))

    @property
    def competitive_ratio(self) -> float:
        """Exact discrete ratio ``1 / (1 - (1 - 1/B)^B)``."""
        return float(1.0 / (1.0 - ((self.B - 1) / self.B) ** self.B))

    def model(self) -> ConflictModel:
        return ConflictModel(ConflictKind.REQUESTOR_ABORTS, float(self.B), 2)


def optimal_requestor_aborts(
    B: float,
    k: int = 2,
    mu: float | None = None,
    *,
    deterministic: bool = False,
    discrete: bool = False,
) -> DelayPolicy:
    """Factory for the paper's optimal requestor-aborts policy.

    * ``deterministic=True`` -> wait ``B/(k-1)`` (classic rule at k=2).
    * ``discrete=True`` (k=2, integer B) -> Theorem 1's day-indexed
      strategy.
    * otherwise the continuous exponential density (Thms 1/3); when
      ``mu`` is supplied and inside the regime, the mean-constrained
      density (Thms 2/3).
    """
    B, k = _check_bk(B, k)
    if deterministic:
        return DeterministicRA(B, k)
    if discrete:
        if k != 2:
            raise InvalidParameterError("discrete ski rental is defined for k = 2")
        if not float(B).is_integer():
            raise InvalidParameterError(
                f"discrete ski rental needs an integer B, got {B}"
            )
        return DiscreteSkiRentalRA(int(B))
    if mu is not None and ChainRA.regime_holds(B, k, mu):
        return ChainRA(B, k, mu)
    return ExponentialRA(B, k)
