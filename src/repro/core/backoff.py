"""Progress guarantees via abort-cost backoff (Section 7, Corollary 2).

The pure throughput-optimal policies never let a transaction whose
remaining time exceeds ``B/(k-1)`` survive a conflict, so a long
transaction under sustained contention can starve.  The paper's fix:
grow the transaction's *own* abort cost ``B`` after every abort
(multiplicatively, i.e. doubling), making it progressively harder to
kill.  Corollary 2 then guarantees commit within

    log2(y) + log2(gamma) + log2(k) - log2(B) + 2

attempts with probability >= 1/2, for a transaction of running time
``y`` that meets ``gamma`` conflicts per execution.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.policy import DelayPolicy
from repro.errors import InvalidParameterError
from repro.rngutil import ensure_rng

__all__ = ["BackoffPolicy", "progress_attempt_bound", "progress_probability_lb"]


class BackoffPolicy(DelayPolicy):
    """Wrap a policy *family* with per-transaction abort-cost growth.

    Parameters
    ----------
    policy_factory:
        Callable ``B -> DelayPolicy`` building the conflict policy for a
        given abort cost (e.g. ``lambda B: UniformRW(B, k)``).
    B0:
        Initial abort cost.
    factor:
        Multiplicative growth per abort (paper analyzes 2.0).
    increment:
        Additive growth per abort (the paper's "additive amount"
        alternative); applied after the multiplicative factor.
    max_B:
        Optional ceiling to keep delays bounded in long simulations.

    The wrapper holds mutable per-transaction state; create one instance
    per logical transaction (the arena and HTM layers do).
    """

    def __init__(
        self,
        policy_factory,
        B0: float,
        *,
        factor: float = 2.0,
        increment: float = 0.0,
        max_B: float = math.inf,
    ) -> None:
        if B0 <= 0 or not math.isfinite(B0):
            raise InvalidParameterError(f"B0 must be finite and positive, got {B0}")
        if factor < 1.0:
            raise InvalidParameterError(f"factor must be >= 1, got {factor}")
        if increment < 0.0:
            raise InvalidParameterError(f"increment must be >= 0, got {increment}")
        if factor == 1.0 and increment == 0.0:
            raise InvalidParameterError(
                "backoff needs factor > 1 or increment > 0 (otherwise use the "
                "base policy directly)"
            )
        self._factory = policy_factory
        self.B0 = float(B0)
        self.factor = float(factor)
        self.increment = float(increment)
        self.max_B = float(max_B)
        self._B = float(B0)
        self._inner = policy_factory(self._B)
        self.aborts = 0
        self.name = f"BACKOFF[{self._inner.name}]"

    # -- state machine ----------------------------------------------------
    @property
    def current_B(self) -> float:
        """The abort cost currently in force for this transaction."""
        return self._B

    def record_abort(self) -> None:
        """Grow B after the wrapped transaction aborted."""
        self.aborts += 1
        self._B = min(self._B * self.factor + self.increment, self.max_B)
        self._inner = self._factory(self._B)

    def record_commit(self) -> None:
        """Reset to the base cost once the transaction commits."""
        self.aborts = 0
        self._B = self.B0
        self._inner = self._factory(self._B)

    # -- DelayPolicy interface (delegates to the current inner policy) ----
    def sample(self, rng: np.random.Generator | int | None = None) -> float:
        return self._inner.sample(ensure_rng(rng))

    def sample_many(
        self, n: int, rng: np.random.Generator | int | None = None
    ) -> np.ndarray:
        return self._inner.sample_many(n, ensure_rng(rng))

    @property
    def support(self) -> tuple[float, float]:
        return self._inner.support

    def cdf(self, x: float) -> float:
        return self._inner.cdf(x)

    def pdf(self, x: float) -> float:
        return self._inner.pdf(x)

    def is_deterministic(self) -> bool:
        return self._inner.is_deterministic()


def progress_attempt_bound(y: float, gamma: int, k: int, B: float) -> int:
    """Corollary 2 attempt bound:
    ``ceil(log2 y + log2 gamma + log2 k - log2 B + 2)`` (>= 1).

    After this many attempts with doubling backoff, a transaction of
    running time ``y`` facing ``gamma`` conflicts per execution commits
    with probability at least 1/2.
    """
    if y <= 0 or gamma < 1 or k < 2 or B <= 0:
        raise InvalidParameterError(
            f"need y > 0, gamma >= 1, k >= 2, B > 0; got "
            f"y={y}, gamma={gamma}, k={k}, B={B}"
        )
    raw = math.log2(y) + math.log2(gamma) + math.log2(k) - math.log2(B) + 2.0
    return max(1, math.ceil(raw))


def progress_probability_lb(y: float, gamma: int, k: int, B_current: float) -> float:
    """Per-execution commit-probability lower bound used in the
    Corollary 2 proof: once ``B' >= 2*k*y*gamma``, each conflict is
    survived w.p. ``>= 1 - 1/(2 gamma)``, so a full execution commits
    w.p. ``>= (1 - 1/(2 gamma))^gamma >= 1/2``.

    Returns the conservative bound ``max(0, (1 - y(k-1)/B')^gamma)``.
    """
    if y <= 0 or gamma < 1 or k < 2 or B_current <= 0:
        raise InvalidParameterError("invalid progress-bound parameters")
    # per-conflict survival = (B'/(k-1) - y) / (B'/(k-1)) for the uniform
    # requestor-wins policy; simplifies to 1 - y(k-1)/B'.
    per_conflict = 1.0 - y * (k - 1) / B_current
    if per_conflict <= 0.0:
        return 0.0
    return per_conflict**gamma
