"""Estimator models for the policy inputs B, k and µ.

Every delay policy in this repository is parameterized by estimates —
the abort cost ``B`` (footnote 1: transaction age + cleanup overhead),
the conflict-chain size ``k`` (read off the waits-for graph), and the
profiled mean remaining time ``µ`` (Theorems 2/3/5/6).  Two halves
live here:

* **Measurement error** — :class:`NoisyEstimator`: on real hardware
  none of the three inputs is exact (ages are sampled late, chains are
  racing moving targets, profilers lag the workload).  The
  fault-injection layer (:mod:`repro.faults`) and the robustness
  experiments share this one seeded model of that error: independent
  multiplicative log-normal noise per quantity.  Log-normal is the
  natural choice for positive scale estimates — the error is symmetric
  in *ratio*, and ``sigma = 0`` degenerates to the exact value without
  consuming randomness (the zero-fault determinism guarantee).
* **Online estimation** — :class:`WindowedMean` and
  :class:`OnlineEstimator`: the decision service (:mod:`repro.serve`)
  estimates (B, k, µ) *from the live request stream* rather than from
  an offline profile.  Decay is window-based (the estimate is the mean
  of the last ``window`` observations, older samples fall out), which
  is what lets the adaptive policy track regime shifts mid-stream.
  Updates are O(1) — a Neumaier-compensated running sum over a deque —
  with a periodic exact ``fsum`` resync so the streaming value never
  drifts from the batch recomputation; the pure batch references
  (:func:`offline_window_mean`, :func:`offline_estimate`) are the
  ground truth the property suite (``tests/test_serve_estimators.py``)
  pins the online path against.

Everything here is deterministic and allocation-light: no wall-clock
reads, no ambient randomness, no global state — the estimators run
inside sim-critical callers and must preserve the repository's
bit-determinism contract.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.errors import FaultInjectionError, InvalidParameterError

__all__ = [
    "NoisyEstimator",
    "WindowedMean",
    "EstimateSnapshot",
    "OnlineEstimator",
    "offline_window_mean",
    "offline_estimate",
]


@dataclass(frozen=True)
class NoisyEstimator:
    """Multiplicative log-normal noise on the (B, k, µ) estimates.

    Attributes
    ----------
    sigma_b / sigma_k / sigma_mu:
        Standard deviation of ``log(estimate / truth)`` per quantity;
        0 means the quantity is observed exactly.
    """

    sigma_b: float = 0.0
    sigma_k: float = 0.0
    sigma_mu: float = 0.0

    def __post_init__(self) -> None:
        for name in ("sigma_b", "sigma_k", "sigma_mu"):
            if getattr(self, name) < 0:
                raise FaultInjectionError(
                    f"{name} must be >= 0, got {getattr(self, name)}"
                )

    @property
    def exact(self) -> bool:
        return self.sigma_b == 0.0 and self.sigma_k == 0.0 and self.sigma_mu == 0.0

    @staticmethod
    def _factor(sigma: float, rng: np.random.Generator) -> float:
        if sigma <= 0:
            return 1.0
        return float(np.exp(sigma * rng.standard_normal()))

    def age_hat(self, age: int, rng: np.random.Generator) -> int:
        """Noisy transaction age (the variable part of ``B``)."""
        if self.sigma_b <= 0:
            return age
        return max(0, int(round(age * self._factor(self.sigma_b, rng))))

    def k_hat(self, k: int, rng: np.random.Generator) -> int:
        """Noisy chain size, clamped to the model's ``k >= 2`` domain."""
        if self.sigma_k <= 0:
            return k
        return max(2, int(round(k * self._factor(self.sigma_k, rng))))

    def mu_hat(self, mu: float, rng: np.random.Generator) -> float:
        """Noisy profiled mean (always strictly positive)."""
        if self.sigma_mu <= 0:
            return mu
        return max(1e-9, mu * self._factor(self.sigma_mu, rng))


# ---------------------------------------------------------------------------
# Online (streaming) estimation with windowed decay
# ---------------------------------------------------------------------------


def _check_window(window: int) -> int:
    if not isinstance(window, int) or isinstance(window, bool) or window < 1:
        raise InvalidParameterError(
            f"window must be an integer >= 1, got {window!r}"
        )
    return window


class WindowedMean:
    """Streaming mean of the last ``window`` observations.

    The decay model is a hard sliding window: an observation
    contributes with full weight until it is ``window`` samples old,
    then drops out entirely.  That makes the estimate a pure function
    of the window's *contents*, which is what the offline reference
    (:func:`offline_window_mean`) recomputes from scratch — the two
    must agree to float round-off on any stream.

    Updates are O(1): the running sum is Neumaier-compensated on both
    the arriving and the departing sample, and every ``window``
    observations the sum is resynced with an exact :func:`math.fsum`
    over the buffer so error can never accumulate across regimes.
    """

    __slots__ = ("window", "_buf", "_sum", "_comp", "_since_sync")

    def __init__(self, window: int) -> None:
        self.window = _check_window(window)
        self._buf: deque[float] = deque()
        self._sum = 0.0
        self._comp = 0.0
        self._since_sync = 0

    def _add(self, x: float) -> None:
        # Neumaier-compensated accumulation (works for removal too:
        # the departing sample is added with a flipped sign)
        t = self._sum + x
        if abs(self._sum) >= abs(x):
            self._comp += (self._sum - t) + x
        else:
            self._comp += (x - t) + self._sum
        self._sum = t

    def observe(self, x: float) -> None:
        x = float(x)
        if not math.isfinite(x):
            raise InvalidParameterError(
                f"observation must be finite, got {x!r}"
            )
        self._buf.append(x)
        self._add(x)
        if len(self._buf) > self.window:
            self._add(-self._buf.popleft())
        self._since_sync += 1
        if self._since_sync >= self.window:
            # exact resync: keep the part of the exact sum that does
            # not fit in one float in the compensation term, so a huge
            # transient cannot erase the tiny samples riding under it
            s = math.fsum(self._buf)
            self._sum = s
            self._comp = math.fsum([-s, *self._buf])
            self._since_sync = 0

    @property
    def n(self) -> int:
        """Observations currently inside the window."""
        return len(self._buf)

    @property
    def total(self) -> float:
        return self._sum + self._comp

    @property
    def mean(self) -> float:
        """Window mean, or NaN while the window is empty."""
        if not self._buf:
            return math.nan
        return (self._sum + self._comp) / len(self._buf)

    def reset(self) -> None:
        self._buf.clear()
        self._sum = 0.0
        self._comp = 0.0
        self._since_sync = 0


def offline_window_mean(values: Sequence[float], window: int) -> float:
    """Batch reference for :class:`WindowedMean`: the exact mean of the
    last ``window`` elements of ``values`` (NaN when empty)."""
    _check_window(window)
    tail = list(values)[-window:]
    if not tail:
        return math.nan
    return math.fsum(float(v) for v in tail) / len(tail)


@dataclass(frozen=True)
class EstimateSnapshot:
    """One consistent read of the stream estimators.

    ``b_hat``/``k_hat``/``mu_hat`` are window means (NaN while the
    corresponding window is empty); the counts say how much evidence
    each estimate rests on — the adaptive policy treats a thin sample
    as a cold start and falls back to the deterministic rule.
    """

    b_hat: float
    k_hat: float
    mu_hat: float
    n_conflicts: int
    n_commits: int

    def k_round(self) -> int:
        """``k_hat`` rounded into the model's ``k >= 2`` domain."""
        if math.isnan(self.k_hat):
            return 2
        return max(2, int(round(self.k_hat)))


class OnlineEstimator:
    """Incremental (B, k, µ) estimation over a conflict/commit stream.

    Two feeds:

    * :meth:`observe_conflict` — every decision request carries the
      receiver's abort cost ``B`` and chain size ``k`` at conflict
      time; both go into sliding windows.
    * :meth:`observe_commit` — committed transactions report their
      duration, the live analogue of the profiled mean remaining time
      ``µ`` that Theorems 2/3/5/6 consume.

    :meth:`snapshot` is O(1) and side-effect-free, so the decision
    service can read estimates per request without perturbing them.
    """

    __slots__ = ("_b", "_k", "_mu")

    def __init__(self, window: int = 1024) -> None:
        self._b = WindowedMean(window)
        self._k = WindowedMean(window)
        self._mu = WindowedMean(window)

    @property
    def window(self) -> int:
        return self._b.window

    def observe_conflict(self, b: float, k: int) -> None:
        if b < 0:
            raise InvalidParameterError(f"abort cost must be >= 0, got {b!r}")
        if k < 2:
            raise InvalidParameterError(f"chain size must be >= 2, got {k!r}")
        self._b.observe(b)
        self._k.observe(k)

    def observe_commit(self, duration: float) -> None:
        if duration < 0:
            raise InvalidParameterError(
                f"commit duration must be >= 0, got {duration!r}"
            )
        self._mu.observe(duration)

    def snapshot(self) -> EstimateSnapshot:
        return EstimateSnapshot(
            b_hat=self._b.mean,
            k_hat=self._k.mean,
            mu_hat=self._mu.mean,
            n_conflicts=self._b.n,
            n_commits=self._mu.n,
        )

    def reset(self) -> None:
        self._b.reset()
        self._k.reset()
        self._mu.reset()


def offline_estimate(
    conflicts: Iterable[tuple[float, int]],
    durations: Sequence[float],
    window: int = 1024,
) -> EstimateSnapshot:
    """Batch reference for :class:`OnlineEstimator`.

    Recomputes what an online estimator with the same ``window`` holds
    after consuming ``conflicts`` (``(B, k)`` pairs, in order) and
    ``durations`` — the property suite feeds both paths the same
    stream and pins them together.
    """
    window = _check_window(window)
    bs: list[float] = []
    ks: list[float] = []
    for b, k in conflicts:
        bs.append(float(b))
        ks.append(float(k))
    tail_b = bs[-window:]
    tail_mu = [float(d) for d in durations][-window:]
    return EstimateSnapshot(
        b_hat=offline_window_mean(bs, window),
        k_hat=offline_window_mean(ks, window),
        mu_hat=offline_window_mean(tail_mu, window),
        n_conflicts=len(tail_b),
        n_commits=len(tail_mu),
    )
