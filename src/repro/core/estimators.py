"""Noisy estimator models for the policy inputs B, k and µ.

Every delay policy in this repository is parameterized by estimates —
the abort cost ``B`` (footnote 1: transaction age + cleanup overhead),
the conflict-chain size ``k`` (read off the waits-for graph), and the
profiled mean remaining time ``µ`` (Theorems 2/3/5/6).  On real
hardware none of these is exact: ages are sampled late, chains are
racing moving targets, and profilers lag the workload.  This module
gives both the fault-injection layer (:mod:`repro.faults`) and the
robustness experiments one shared, seeded model of that measurement
error: independent multiplicative log-normal noise per quantity.

Log-normal is the natural choice for positive scale estimates — the
error is symmetric in *ratio* (overestimating 2x is as likely as
underestimating 2x), which is how profiler bias actually behaves, and
``sigma = 0`` degenerates to the exact value without consuming
randomness (important for the zero-fault determinism guarantee).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import FaultInjectionError

__all__ = ["NoisyEstimator"]


@dataclass(frozen=True)
class NoisyEstimator:
    """Multiplicative log-normal noise on the (B, k, µ) estimates.

    Attributes
    ----------
    sigma_b / sigma_k / sigma_mu:
        Standard deviation of ``log(estimate / truth)`` per quantity;
        0 means the quantity is observed exactly.
    """

    sigma_b: float = 0.0
    sigma_k: float = 0.0
    sigma_mu: float = 0.0

    def __post_init__(self) -> None:
        for name in ("sigma_b", "sigma_k", "sigma_mu"):
            if getattr(self, name) < 0:
                raise FaultInjectionError(
                    f"{name} must be >= 0, got {getattr(self, name)}"
                )

    @property
    def exact(self) -> bool:
        return self.sigma_b == 0.0 and self.sigma_k == 0.0 and self.sigma_mu == 0.0

    @staticmethod
    def _factor(sigma: float, rng: np.random.Generator) -> float:
        if sigma <= 0:
            return 1.0
        return float(np.exp(sigma * rng.standard_normal()))

    def age_hat(self, age: int, rng: np.random.Generator) -> int:
        """Noisy transaction age (the variable part of ``B``)."""
        if self.sigma_b <= 0:
            return age
        return max(0, int(round(age * self._factor(self.sigma_b, rng))))

    def k_hat(self, k: int, rng: np.random.Generator) -> int:
        """Noisy chain size, clamped to the model's ``k >= 2`` domain."""
        if self.sigma_k <= 0:
            return k
        return max(2, int(round(k * self._factor(self.sigma_k, rng))))

    def mu_hat(self, mu: float, rng: np.random.Generator) -> float:
        """Noisy profiled mean (always strictly positive)."""
        if self.sigma_mu <= 0:
            return mu
        return max(1e-9, mu * self._factor(self.sigma_mu, rng))
