"""Shared machinery for continuous (density-based) delay policies.

Each optimal randomized policy in the paper is a continuous distribution
on ``[0, B/(k-1)]`` with a closed-form PDF.  This module provides a base
class that turns a vectorized PDF/CDF pair into a sampler:

* closed-form inverse CDFs are used where available (subclass override);
* otherwise sampling inverts the CDF numerically on a dense precomputed
  grid (a single vectorized ``np.interp`` per batch — no Python-level
  loops, per the HPC guides' "vectorize the hot path" rule).

The grid inversion is accurate to ``support_width / GRID_POINTS`` which
at the default 16384 points is far below any simulation timestep used in
the experiments; tests check sampler-vs-CDF agreement explicitly.
"""

from __future__ import annotations

import numpy as np

from repro.core.policy import DelayPolicy
from repro.errors import InvalidParameterError
from repro.rngutil import ensure_rng

__all__ = ["ContinuousDelayPolicy", "GRID_POINTS"]

#: Number of points in the inverse-CDF interpolation grid.
GRID_POINTS = 16384


class ContinuousDelayPolicy(DelayPolicy):
    """A delay policy defined by a continuous density on ``[lo, hi]``.

    Subclasses implement :meth:`pdf_vec` and :meth:`cdf_vec` (vectorized
    over NumPy arrays) and set ``_lo`` / ``_hi``.  Scalar ``pdf``/``cdf``
    and sampling come for free.
    """

    _lo: float = 0.0
    _hi: float

    # -- vectorized distribution interface (subclass responsibility) ----
    def pdf_vec(self, x: np.ndarray) -> np.ndarray:
        """Vectorized PDF; zero outside the support."""
        raise NotImplementedError

    def cdf_vec(self, x: np.ndarray) -> np.ndarray:
        """Vectorized CDF."""
        raise NotImplementedError

    # -- DelayPolicy interface ------------------------------------------
    @property
    def support(self) -> tuple[float, float]:
        return (self._lo, self._hi)

    def pdf(self, x: float) -> float:
        return float(self.pdf_vec(np.asarray([x], dtype=float))[0])

    def cdf(self, x: float) -> float:
        return float(self.cdf_vec(np.asarray([x], dtype=float))[0])

    def ppf(self, q: np.ndarray | float) -> np.ndarray:
        """Quantile function (inverse CDF), vectorized.

        The default implementation interpolates a cached dense CDF grid;
        subclasses with closed-form inverses override this.
        """
        grid_x, grid_f = self._cdf_grid()
        q_arr = np.asarray(q, dtype=float)
        if np.any((q_arr < 0.0) | (q_arr > 1.0)):
            raise InvalidParameterError("quantiles must lie in [0, 1]")
        return np.interp(q_arr, grid_f, grid_x)

    def sample(self, rng: np.random.Generator | int | None = None) -> float:
        gen = ensure_rng(rng)
        return float(self.ppf(gen.random()))

    def sample_many(
        self, n: int, rng: np.random.Generator | int | None = None
    ) -> np.ndarray:
        gen = ensure_rng(rng)
        return np.atleast_1d(self.ppf(gen.random(n)))

    def expected_delay(self) -> float:
        xs = np.linspace(self._lo, self._hi, 8193)
        return float(np.trapezoid(xs * self.pdf_vec(xs), xs))

    # -- internals -------------------------------------------------------
    def _cdf_grid(self) -> tuple[np.ndarray, np.ndarray]:
        cached = getattr(self, "_grid_cache", None)
        if cached is None:
            xs = np.linspace(self._lo, self._hi, GRID_POINTS)
            fs = self.cdf_vec(xs)
            # Guard against tiny numeric non-monotonicity so np.interp's
            # precondition (sorted xp) holds exactly.
            fs = np.maximum.accumulate(fs)
            fs[0], fs[-1] = 0.0, 1.0
            cached = (xs, fs)
            self._grid_cache = cached
        return cached

    def _in_support(self, x: np.ndarray) -> np.ndarray:
        return (x >= self._lo) & (x <= self._hi)
