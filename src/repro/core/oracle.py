"""The offline optimum — a clairvoyant policy with foresight.

``OPT`` knows the receiver's remaining time ``D`` at conflict time and
therefore makes the perfect choice: let the receiver run iff
``(k-1) * D <= B``.  It exists to calibrate experiments (the ``OPT``
series in Figure 2) and to drive the offline side of the Corollary 1
arena; it is *not* implementable online.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.model import ConflictModel
from repro.core.policy import DelayPolicy
from repro.errors import InvalidParameterError

__all__ = ["ClairvoyantPolicy"]


class ClairvoyantPolicy(DelayPolicy):
    """Offline optimal decision rule (perfect information).

    Unlike online policies, sampling a delay requires the remaining time
    ``D``; use :meth:`decide` (the plain :meth:`sample` interface raises,
    to catch accidental use as an online policy).
    """

    name = "OPT"

    def __init__(self, model: ConflictModel) -> None:
        if not isinstance(model, ConflictModel):
            raise InvalidParameterError(f"model must be a ConflictModel, got {model!r}")
        self.model = model

    def decide(self, remaining: float) -> float:
        """Optimal delay given the true remaining time.

        Returns ``remaining`` (wait out the commit) when that is cheaper
        than an immediate abort, else 0.
        """
        if remaining < 0 or not math.isfinite(remaining):
            raise InvalidParameterError(
                f"remaining must be finite and >= 0, got {remaining}"
            )
        if self.model.waiters * remaining <= self.model.B:
            return remaining
        return 0.0

    def decide_vec(self, remaining: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`decide`."""
        d = np.asarray(remaining, dtype=float)
        return np.where(self.model.waiters * d <= self.model.B, d, 0.0)

    def cost(self, remaining: float) -> float:
        """The cost OPT actually pays: ``min((k-1)D, B)``."""
        return self.model.opt(remaining)

    # -- DelayPolicy interface (guarded) ---------------------------------
    def sample(self, rng=None) -> float:
        raise NotImplementedError(
            "ClairvoyantPolicy needs the remaining time; call decide(D)"
        )

    @property
    def support(self) -> tuple[float, float]:
        return (0.0, self.model.delay_cap)

    def cdf(self, x: float) -> float:
        raise NotImplementedError(
            "ClairvoyantPolicy has no unconditional delay distribution"
        )
