"""``repro.analysis`` — simlint, the determinism & contract linter.

Every claim this repository reproduces rests on the simulator being
bit-deterministic under a seed.  This package enforces that contract
statically: AST rules catch wall-clock reads, unseeded randomness,
unordered-set iteration, watchdog-swallowing ``except`` blocks,
mutable defaults, frozen-dataclass mutation, and protocol/registration
violations *before* they can corrupt a digest.

Entry points:

* ``python -m repro lint`` — CLI (see :mod:`repro.analysis.cli`)
* :func:`lint_paths` / :func:`lint_sources` — library API
* ``docs/STATIC_ANALYSIS.md`` — rule catalog and suppression policy
"""

from __future__ import annotations

from repro.analysis.engine import (
    LintResult,
    SuppressedFinding,
    lint_paths,
    lint_sources,
)
from repro.analysis.rules import ALL_RULES, Finding, all_rule_ids

__all__ = [
    "ALL_RULES",
    "Finding",
    "LintResult",
    "SuppressedFinding",
    "all_rule_ids",
    "lint_paths",
    "lint_sources",
]
