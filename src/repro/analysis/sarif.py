"""SARIF 2.1.0 rendering for simlint results.

One run, one tool (``simlint``), the full rule catalog in
``tool.driver.rules``, one result per finding.  Baselined deep
findings are emitted as suppressed results (``suppressions`` with
``kind: external``) so SARIF viewers show them greyed out with their
justification instead of hiding them.

Output is deterministic — sorted keys, no timestamps, no absolute
paths — so a cached re-run of an unchanged tree is byte-identical.
"""

from __future__ import annotations

import json

from repro.analysis.engine import LintResult
from repro.analysis.rules import ALL_RULES

__all__ = ["render_sarif"]

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def _rule_entries() -> list[dict]:
    return [
        {
            "id": rule.id,
            "name": type(rule).__name__,
            "shortDescription": {"text": rule.summary},
            "fullDescription": {"text": rule.rationale},
        }
        for rule in ALL_RULES
    ]


def _location(path: str, line: int, col: int) -> dict:
    return {
        "physicalLocation": {
            "artifactLocation": {"uri": path},
            "region": {"startLine": line, "startColumn": max(col, 1)},
        }
    }


def render_sarif(result: LintResult) -> str:
    results = [
        {
            "ruleId": f.rule,
            "level": "error",
            "message": {"text": f.message},
            "locations": [_location(f.path, f.line, f.col)],
        }
        for f in result.findings
    ]
    results.extend(
        {
            "ruleId": b["rule"],
            "level": "note",
            "message": {"text": b["message"]},
            "locations": [_location(b["path"], b["line"], 1)],
            "suppressions": [
                {
                    "kind": "external",
                    "justification": b["justification"],
                }
            ],
        }
        for b in result.baselined
    )
    payload = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "simlint",
                        "informationUri": "docs/STATIC_ANALYSIS.md",
                        "rules": _rule_entries(),
                    }
                },
                "results": results,
                "properties": {
                    "filesScanned": result.files_scanned,
                    "rulesRun": result.rules_run,
                },
            }
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
