"""``python -m repro lint`` — the determinism & contract linter.

Examples::

    python -m repro lint                       # lint src/ (default)
    python -m repro lint src tests/test_x.py   # explicit targets
    python -m repro lint --format json         # machine-readable
    python -m repro lint --select DET,ORD      # rule families
    python -m repro lint --list-rules          # catalog + rationale

Exit codes: ``0`` clean, ``1`` findings, ``2`` usage error (unknown
rule, missing path).  See ``docs/STATIC_ANALYSIS.md`` for the rule
catalog and the suppression policy.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.engine import lint_paths
from repro.analysis.report import (
    render_human,
    render_json,
    render_rule_catalog,
)

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "simlint: AST-based determinism & contract linter for the "
            "transactional-conflict reproduction (DET/ORD/ERR/API/POL "
            "rule families)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="report format (default: human)",
    )
    parser.add_argument(
        "--select",
        metavar="RULE,...",
        default=None,
        help="only run these rules (full ids like DET001 or family "
        "prefixes like DET)",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULE,...",
        default=None,
        help="skip these rules (same syntax as --select)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog with rationales and exit",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also print suppressed findings and their justifications",
    )
    return parser


def _split(arg: str | None) -> list[str] | None:
    if arg is None:
        return None
    return [part.strip().upper() for part in arg.split(",") if part.strip()]


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(render_rule_catalog())
        return 0
    try:
        result = lint_paths(
            args.paths,
            select=_split(args.select),
            ignore=_split(args.ignore),
        )
    except (ValueError, FileNotFoundError) as exc:
        print(f"simlint: error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(render_json(result))
    else:
        print(render_human(result))
        if args.show_suppressed and result.suppressed:
            print("suppressed:")
            for sup in result.suppressed:
                reason = f" -- {sup.reason}" if sup.reason else ""
                f = sup.finding
                print(f"  {f.path}:{f.line}: {f.rule}{reason}")
    return 0 if result.ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
