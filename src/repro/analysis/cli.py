"""``python -m repro lint`` — the determinism & contract linter.

Examples::

    python -m repro lint                       # lint src/ (default)
    python -m repro lint src tests/test_x.py   # explicit targets
    python -m repro lint --format json         # machine-readable
    python -m repro lint --select DET,ORD      # rule families
    python -m repro lint --list-rules          # catalog + rationale
    python -m repro lint --deep                # + whole-program FLOW pass
    python -m repro analyze                    # alias for lint --deep
    python -m repro lint --deep --format sarif # SARIF 2.1.0 (CI upload)
    python -m repro lint --deep --write-baseline  # accept current findings
    python -m repro lint --jobs 4              # parallel over files

Exit codes: ``0`` clean, ``1`` findings, ``2`` usage error (unknown
rule, missing path, malformed baseline).  See
``docs/STATIC_ANALYSIS.md`` for the rule catalog, the suppression
policy, and the deep-pass baseline workflow.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis.baseline import (
    DEFAULT_BASELINE_PATH,
    load_baseline,
    render_baseline,
)
from repro.analysis.engine import lint_paths
from repro.analysis.flow.cache import DEFAULT_ANALYSIS_CACHE_DIR
from repro.analysis.report import (
    render_human,
    render_json,
    render_rule_catalog,
)
from repro.analysis.sarif import render_sarif

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description=(
            "simlint: AST-based determinism & contract linter for the "
            "transactional-conflict reproduction (DET/ORD/ERR/API/POL/"
            "OBS/PRG rule families, plus whole-program FLOW under "
            "--deep)"
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json", "sarif"),
        default="human",
        help="report format (default: human)",
    )
    parser.add_argument(
        "--select",
        metavar="RULE,...",
        default=None,
        help="only run these rules (full ids like DET001 or family "
        "prefixes like DET)",
    )
    parser.add_argument(
        "--ignore",
        metavar="RULE,...",
        default=None,
        help="skip these rules (same syntax as --select)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog with rationales and exit",
    )
    parser.add_argument(
        "--show-suppressed",
        action="store_true",
        help="also print suppressed findings and their justifications",
    )
    parser.add_argument(
        "--deep",
        action="store_true",
        help="also run the whole-program FLOW pass (call-graph purity "
        "inference + RNG seed provenance; prints full call chains)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="parallelize per-file rules and deep extraction over N "
        "processes; output is identical at any N (default: 1)",
    )
    parser.add_argument(
        "--baseline",
        metavar="PATH",
        default=None,
        help="baseline file accepting known deep findings (default: "
        f"{DEFAULT_BASELINE_PATH} when it exists)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the surviving deep findings to the baseline file "
        "(with placeholder justifications) and exit 0",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the content-addressed analysis cache",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=DEFAULT_ANALYSIS_CACHE_DIR,
        help="analysis cache directory (default: "
        f"{DEFAULT_ANALYSIS_CACHE_DIR})",
    )
    return parser


def _split(arg: str | None) -> list[str] | None:
    if arg is None:
        return None
    return [part.strip().upper() for part in arg.split(",") if part.strip()]


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        print(render_rule_catalog())
        return 0

    baseline_entries: list[dict] = []
    baseline_path = args.baseline
    if baseline_path is None and Path(DEFAULT_BASELINE_PATH).is_file():
        baseline_path = DEFAULT_BASELINE_PATH
    pool = None
    try:
        if args.deep and baseline_path and not args.write_baseline:
            baseline_entries = load_baseline(baseline_path)
        if args.jobs > 1:
            from repro.parallel.pool import make_pool

            pool = make_pool(args.jobs)
        result = lint_paths(
            args.paths,
            select=_split(args.select),
            ignore=_split(args.ignore),
            deep=args.deep,
            pool=pool,
            cache_dir=None if args.no_cache else args.cache_dir,
            baseline_entries=baseline_entries,
        )
    except (ValueError, FileNotFoundError) as exc:
        print(f"simlint: error: {exc}", file=sys.stderr)
        return 2
    finally:
        if pool is not None:
            pool.close()

    if args.deep and args.write_baseline:
        target = baseline_path or DEFAULT_BASELINE_PATH
        Path(target).write_text(
            render_baseline(result.flow), encoding="utf-8"
        )
        print(
            f"simlint: wrote {len(result.flow)} deep finding(s) to "
            f"{target}; edit the justifications before committing",
            file=sys.stderr,
        )
        return 0

    if args.deep and result.analysis_stats:
        stats = result.analysis_stats
        print(
            "simlint: analysis cache — "
            f"{stats.get('file_hits', 0)} file hit(s), "
            f"{stats.get('file_misses', 0)} miss(es), "
            f"run {'hit' if stats.get('run_hit') else 'miss'}",
            file=sys.stderr,
        )

    if args.format == "json":
        print(render_json(result))
    elif args.format == "sarif":
        print(render_sarif(result))
    else:
        print(render_human(result))
        if args.show_suppressed and result.suppressed:
            print("suppressed:")
            for sup in result.suppressed:
                reason = f" -- {sup.reason}" if sup.reason else ""
                f = sup.finding
                print(f"  {f.path}:{f.line}: {f.rule}{reason}")
        if result.baselined:
            print("baselined:")
            for b in result.baselined:
                print(
                    f"  {b['path']}:{b['line']}: {b['rule']} -- "
                    f"{b['justification']}"
                )
    return 0 if result.ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
