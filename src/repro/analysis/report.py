"""simlint report rendering: human ``path:line:col: RULE message``
lines and a machine-readable JSON document (for CI annotation or
trend tracking)."""

from __future__ import annotations

import json

from repro.analysis.engine import LintResult
from repro.analysis.rules import ALL_RULES

__all__ = ["render_human", "render_json", "render_rule_catalog"]


def render_human(result: LintResult) -> str:
    lines = [
        f"{f.path}:{f.line}:{f.col}: {f.rule} {f.message}"
        for f in result.findings
    ]
    n = len(result.findings)
    n_sup = len(result.suppressed)
    n_base = len(result.baselined)
    sup_note = f", {n_sup} suppressed" if n_sup else ""
    sup_note += f", {n_base} baselined" if n_base else ""
    if n == 0:
        summary = (
            f"simlint: clean — 0 findings in {result.files_scanned} "
            f"files{sup_note}"
        )
    else:
        by_rule = ", ".join(
            f"{rule}×{count}" for rule, count in result.counts().items()
        )
        summary = (
            f"simlint: {n} finding(s) in {result.files_scanned} files "
            f"({by_rule}{sup_note})"
        )
    return "\n".join(lines + [summary])


def render_json(result: LintResult) -> str:
    payload = {
        "ok": result.ok,
        "files_scanned": result.files_scanned,
        "rules_run": result.rules_run,
        "counts": result.counts(),
        "findings": [
            {
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "rule": f.rule,
                "message": f.message,
            }
            for f in result.findings
        ],
        "suppressed": [
            {
                "path": s.finding.path,
                "line": s.finding.line,
                "col": s.finding.col,
                "rule": s.finding.rule,
                "reason": s.reason,
            }
            for s in result.suppressed
        ],
        # deep-pass sections: full chains for live FLOW findings, plus
        # the accepted (baselined) ones with their justifications.
        # analysis_stats is deliberately NOT serialized — cache hit
        # counts vary run to run, and cached reruns must stay
        # byte-identical.
        "flow": result.flow,
        "baselined": result.baselined,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_rule_catalog() -> str:
    """``--list-rules`` output: one id + summary per line, with the
    rationale indented underneath."""
    blocks = []
    for rule in ALL_RULES:
        blocks.append(f"{rule.id}  {rule.summary}")
        if rule.rationale:
            blocks.append(f"       {rule.rationale}")
    return "\n".join(blocks)
