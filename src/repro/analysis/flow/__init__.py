"""Whole-program determinism analysis (the ``--deep`` pass).

Call-graph purity inference + RNG seed-provenance tracking over the
whole project: :mod:`extract` summarizes each module once,
:mod:`graph` resolves calls and propagates effect signatures to
fixpoint, :mod:`driver` orchestrates with a content-addressed cache
(:mod:`cache`).  Findings carry rule ids from the FLOW family
(:mod:`repro.analysis.rules.flow`) and print full call chains.
"""

from repro.analysis.flow.cache import (
    AnalysisCache,
    DEFAULT_ANALYSIS_CACHE_DIR,
)
from repro.analysis.flow.driver import analyze_sources, module_names
from repro.analysis.flow.extract import ANALYSIS_VERSION, extract_module
from repro.analysis.flow.graph import ProjectGraph

__all__ = [
    "ANALYSIS_VERSION",
    "AnalysisCache",
    "DEFAULT_ANALYSIS_CACHE_DIR",
    "ProjectGraph",
    "analyze_sources",
    "extract_module",
    "module_names",
]
