"""Per-module extraction for the deep (``--deep``) analysis pass.

One parse of one file produces a **module summary**: every function
with its intrinsic effect sites, its outgoing call references (still
symbolic — resolution needs the whole project), its seed-provenance
sites, plus the module's imports, classes, registry registrations and
module-level generators.  Summaries are plain JSON-able dicts on
purpose: they are exactly what the analysis cache stores
(:mod:`repro.analysis.flow.cache`) and what pool workers ship back
when extraction is parallelized.

Pragmas are honored at the *site*: an intrinsic effect whose line
carries ``# simlint: disable=DET001`` (or the matching FLOW id) is a
documented exception and is never recorded, so a sanctioned watchdog
read does not taint every entry point that reaches ``Machine.run``.
"""

from __future__ import annotations

import ast
import re

from repro.analysis.engine import _parse_pragmas
from repro.analysis.rules.base import dotted_name
from repro.analysis.rules.det import _NP_LEGACY, _WALL_CLOCK

__all__ = ["extract_module", "extract_task", "ENTRY_DIRS", "ANALYSIS_VERSION"]

#: Bump to invalidate every cached module summary / run record.
ANALYSIS_VERSION = 1

#: Directories whose modules hold sim-critical *entry points* for the
#: deep pass: the simulation packages the scoped DET rules cover, plus
#: ``core`` (closed-form math feeding every table) — per-line rules
#: stay out of ``core`` (wall clock there is legal in the runner), but
#: an entry point reaching an impure effect is not.
ENTRY_DIRS = frozenset(
    {"sim", "htm", "core", "workloads", "adversary", "faults", "distributions"}
)

#: Effect -> rule ids whose line-scoped suppression sanctions the site.
_SITE_SUPPRESS = {
    "wall-clock": frozenset({"DET001", "FLOW001"}),
    "ambient-rng": frozenset({"DET002", "DET003", "FLOW002"}),
    "unordered-iter": frozenset({"ORD001", "FLOW003"}),
    "global-mutation": frozenset({"FLOW004"}),
    "fs-write": frozenset({"ERR004", "FLOW005"}),
    "seed-provenance": frozenset({"DET003", "FLOW006"}),
    "rng-boundary": frozenset({"FLOW007"}),
}

_GEN_CTORS = frozenset({"default_rng", "SeedSequence", "Generator"})
_CLEAN_RNG_FNS = frozenset(
    {"seedseq_for", "stream_for", "spawn_streams", "ensure_rng"}
)
_AMBIENT_FNS = frozenset(
    {"os.getpid", "os.urandom", "uuid.uuid1", "uuid.uuid4", "id"}
)
_RNG_NAME = re.compile(r"rng|gen|stream|seedseq|seed", re.IGNORECASE)
#: distinctive write-method names.  Deliberately excludes the pathlib
#: names that collide with ordinary methods on project objects
#: (``touch`` is the LRU cache's recency bump, ``unlink`` a list op);
#: those writes are still caught via the ``os.*``/``shutil.*`` forms.
_FS_SUFFIXES = frozenset({"write_text", "write_bytes", "rmtree"})
_FS_FULL = frozenset(
    {
        "os.remove", "os.unlink", "os.rename", "os.replace", "os.makedirs",
        "os.rmdir", "os.truncate", "shutil.move", "shutil.copy",
        "shutil.copy2", "shutil.copyfile", "shutil.copytree",
    }
)
#: pool-dispatch call names: a lambda/closure handed to one of these
#: crosses a process boundary.
_DISPATCH = frozenset(
    {"starmap", "map", "imap", "imap_unordered", "map_async", "submit",
     "apply_async"}
)
_WRITE_MODES = re.compile(r"[wax+]")


def _suffixes(dotted: str) -> set[str]:
    parts = dotted.split(".")
    return {".".join(parts[i:]) for i in range(len(parts))}


def in_entry_scope(path: str) -> bool:
    """True when ``path`` lives under a sim-critical directory."""
    return bool(ENTRY_DIRS.intersection(path.split("/")))


class _ModuleScanner:
    """Walks one parsed module, producing the summary dict."""

    def __init__(
        self, path: str, module: str, tree: ast.Module, source: str
    ) -> None:
        self.path = path
        self.module = module
        self.tree = tree
        _, self.suppressions, _ = _parse_pragmas(source)
        self.imports: dict[str, str] = {}
        self.local_defs: set[str] = set()
        self.functions: dict[str, dict] = {}
        self.classes: dict[str, dict] = {}
        self.registered: list[dict] = []
        self.module_rng: list[dict] = []
        is_init = path.endswith("__init__.py")
        self.package = module if is_init else module.rpartition(".")[0]

    # -- imports ------------------------------------------------------
    def _collect_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    self.imports[local] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    up = self.package.split(".") if self.package else []
                    up = up[: len(up) - (node.level - 1)] if node.level > 1 else up
                    base = ".".join(up + ([node.module] if node.module else []))
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.imports[local] = (
                        f"{base}.{alias.name}" if base else alias.name
                    )

    def _expand(self, dotted: str) -> str:
        root, sep, rest = dotted.partition(".")
        if root in self.imports:
            target = self.imports[root]
            return f"{target}.{rest}" if rest else target
        if root in self.local_defs:
            return f"{self.module}.{dotted}"
        return dotted

    def _suppressed(self, line: int, effect: str) -> bool:
        ids = self.suppressions.get(line, "missing")
        if ids is None:
            return True  # blanket disable
        if isinstance(ids, set):
            return bool(ids & _SITE_SUPPRESS[effect])
        return False

    # -- top-level walk -----------------------------------------------
    def run(self) -> dict:
        self._collect_imports()
        for node in self.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.local_defs.add(node.name)
            elif isinstance(node, ast.ClassDef):
                self.local_defs.add(node.name)
        for node in self.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._scan_function(node, prefix="", cls=None)
            elif isinstance(node, ast.ClassDef):
                self._scan_class(node)
            else:
                self._scan_module_stmt(node)
        return {
            "version": ANALYSIS_VERSION,
            "module": self.module,
            "path": self.path,
            "entry_scope": in_entry_scope(self.path),
            "imports": dict(sorted(self.imports.items())),
            "functions": self.functions,
            "classes": self.classes,
            "registered": self.registered,
            "module_rng": self.module_rng,
        }

    def _scan_module_stmt(self, node: ast.stmt) -> None:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Call):
                self._maybe_register(sub)
                dotted = dotted_name(sub.func)
                if dotted is None:
                    continue
                tail = self._expand(dotted).rsplit(".", 1)[-1]
                if tail in _GEN_CTORS and isinstance(node, (ast.Assign, ast.AnnAssign)):
                    line = sub.lineno
                    if not self._suppressed(line, "rng-boundary"):
                        target = node.targets[0] if isinstance(node, ast.Assign) else node.target
                        name = dotted_name(target) or "<anonymous>"
                        self.module_rng.append(
                            {
                                "line": line,
                                "name": name,
                                "detail": f"module-level {tail}(...) bound to {name!r}",
                            }
                        )

    def _maybe_register(self, call: ast.Call) -> None:
        dotted = dotted_name(call.func)
        if dotted is None or not self._expand(dotted).endswith(
            "register_experiment"
        ):
            return
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            ref = dotted_name(arg)
            if ref is not None and not isinstance(arg, ast.Constant):
                self.registered.append(
                    {"kind": "name", "ref": self._expand(ref), "line": call.lineno}
                )

    # -- classes ------------------------------------------------------
    def _scan_class(self, node: ast.ClassDef) -> None:
        bases = []
        for base in node.bases:
            dotted = dotted_name(base)
            if dotted is not None:
                bases.append(self._expand(dotted))
        info = {"bases": bases, "methods": [], "attr_types": {}, "line": node.lineno}
        self.classes[node.name] = info
        for sub in node.body:
            if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info["methods"].append(sub.name)
                self._scan_function(sub, prefix=f"{node.name}.", cls=node.name)
            # nested classes are rare in this tree; skipped on purpose

    # -- functions ----------------------------------------------------
    def _scan_function(
        self,
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        *,
        prefix: str,
        cls: str | None,
    ) -> None:
        qual = f"{prefix}{node.name}"
        args = node.args
        params = [
            a.arg
            for a in args.posonlyargs + args.args + args.kwonlyargs
        ] + [s.arg for s in (args.vararg, args.kwarg) if s is not None]
        fn = _FunctionScan(self, qual, cls, params)
        info = {
            "line": node.lineno,
            "public": not any(p.startswith("_") for p in qual.split(".")),
            "params": params,
            "intrinsic": [],
            "calls": [],
            "return_refs": [],
            "rng_sites": [],
            "ambient_return": False,
        }
        self.functions[qual] = info
        for deco in node.decorator_list:
            target = deco.func if isinstance(deco, ast.Call) else deco
            dotted = dotted_name(target)
            if dotted is not None:
                fn.add_call(
                    {"kind": "name", "ref": self._expand(dotted),
                     "line": node.lineno}
                )
        fn.scan_body(node.body)
        info["intrinsic"] = sorted(
            fn.intrinsic, key=lambda e: (e["effect"], e["line"], e["detail"])
        )
        info["calls"] = fn.calls
        info["return_refs"] = fn.return_refs
        info["rng_sites"] = sorted(
            fn.rng_sites, key=lambda s: (s["line"], s["rule"], s["detail"])
        )
        info["ambient_return"] = fn.ambient_return
        # nested defs become their own nodes, with an edge parent->child
        for child in fn.nested:
            self._scan_function(child, prefix=f"{qual}.", cls=cls)


class _FunctionScan:
    """Statement-ordered scan of one function body (lambdas folded in,
    nested defs deferred to their own nodes)."""

    def __init__(
        self, mod: _ModuleScanner, qual: str, cls: str | None, params: list[str]
    ) -> None:
        self.mod = mod
        self.qual = qual
        self.cls = cls
        self.params = set(params)
        self.intrinsic: list[dict] = []
        self.calls: list[dict] = []
        self.return_refs: list[dict] = []
        self.rng_sites: list[dict] = []
        self.ambient_return = False
        self.nested: list[ast.FunctionDef | ast.AsyncFunctionDef] = []
        self.nested_names: dict[str, str] = {}
        self.globals: set[str] = set()
        self.taint: dict[str, str] = {p: "clean" for p in params}
        self.gen_locals: set[str] = set()
        #: local name -> expanded ctor dotted name (``m = Machine()``),
        #: so ``m.run()`` resolves as a bound-method call.
        self.instance_types: dict[str, str] = {}
        self._seen_calls: set[tuple] = set()

    # -- helpers ------------------------------------------------------
    def add_call(self, ref: dict) -> None:
        key = tuple(sorted(ref.items()))
        if key not in self._seen_calls:
            self._seen_calls.add(key)
            self.calls.append(ref)

    def _effect(self, effect: str, node: ast.AST, detail: str) -> None:
        line = getattr(node, "lineno", 1)
        if not self.mod._suppressed(line, effect):
            self.intrinsic.append(
                {"effect": effect, "line": line, "detail": detail}
            )

    def _ref_for(self, expr: ast.AST, line: int) -> dict | None:
        """Symbolic call/callback reference for a Name/Attribute chain."""
        dotted = dotted_name(expr)
        if dotted is None:
            return None
        parts = dotted.split(".")
        if parts[0] in ("self", "cls") and self.cls is not None:
            if len(parts) == 2:
                return {"kind": "self", "cls": self.cls, "method": parts[1],
                        "line": line}
            if len(parts) == 3:
                return {"kind": "attr", "cls": self.cls, "attr": parts[1],
                        "method": parts[2], "line": line}
            return None
        if dotted in self.nested_names:
            return {"kind": "nested", "qual": self.nested_names[dotted],
                    "line": line}
        if len(parts) == 2 and parts[0] in self.instance_types:
            return {"kind": "instance",
                    "cls_ref": self.instance_types[parts[0]],
                    "method": parts[1], "line": line}
        return {"kind": "name", "ref": self.mod._expand(dotted), "line": line}

    # -- taint / provenance -------------------------------------------
    def _classify(self, expr: ast.AST | None) -> tuple[str, object]:
        """Seed-provenance class of an expression:
        ``("ambient", detail)`` / ``("clean", None)`` /
        ``("call", ref)`` / ``("unknown", None)``."""
        if expr is None:
            return ("ambient", "unseeded (entropy-seeded)")
        if isinstance(expr, ast.Constant):
            return ("clean", None)
        if isinstance(expr, ast.Name):
            t = self.taint.get(expr.id, "unknown")
            if t == "ambient":
                return ("ambient", f"local {expr.id!r} is ambient-derived")
            return (t if t == "clean" else "unknown", None)
        if isinstance(expr, ast.Attribute):
            root = expr
            while isinstance(root, ast.Attribute):
                root = root.value
            if isinstance(root, ast.Name) and root.id in self.params:
                return ("clean", None)  # parameter-derived
            return ("unknown", None)
        if isinstance(expr, (ast.BinOp, ast.Tuple, ast.List)):
            kids = (
                [expr.left, expr.right]
                if isinstance(expr, ast.BinOp)
                else list(expr.elts)
            )
            verdicts = [self._classify(k) for k in kids]
            for v in verdicts:
                if v[0] == "ambient":
                    return v
            if verdicts and all(v[0] == "clean" for v in verdicts):
                return ("clean", None)
            return ("unknown", None)
        if isinstance(expr, ast.Call):
            return self._classify_call(expr)
        return ("unknown", None)

    def _classify_call(self, call: ast.Call) -> tuple[str, object]:
        dotted = dotted_name(call.func)
        if dotted is None:
            return ("unknown", None)
        expanded = self.mod._expand(dotted)
        tail = expanded.rsplit(".", 1)[-1]
        if self._is_ambient_call(expanded):
            return ("ambient", f"{expanded}()")
        if tail in _CLEAN_RNG_FNS:
            return ("clean", None)
        if tail in _GEN_CTORS:
            seed = call.args[0] if call.args else None
            if seed is None:
                for kw in call.keywords:
                    if kw.arg in ("seed", "entropy"):
                        seed = kw.value
                        break
            kind, detail = self._classify(seed)
            if kind == "ambient" and seed is None:
                return ("ambient", f"{tail}() without a seed")
            return (kind, detail)
        ref = self._ref_for(call.func, call.lineno)
        if ref is not None and ref["kind"] == "name" and "." in ref["ref"]:
            return ("call", ref)
        return ("unknown", None)

    def _is_ambient_rng(self, expanded: str) -> bool:
        """True randomness sources — the FLOW002 effect."""
        parts = expanded.split(".")
        if parts[0] in ("random", "secrets") and len(parts) > 1:
            return True
        if (
            len(parts) >= 3
            and parts[-2] == "random"
            and parts[-3] in ("np", "numpy")
            and parts[-1] in _NP_LEGACY
        ):
            return True
        return expanded in ("os.urandom", "uuid.uuid4")

    def _is_ambient_call(self, expanded: str) -> bool:
        """Ambient *seed material* — anything that must not feed a
        Generator/SeedSequence (wider than :meth:`_is_ambient_rng`:
        pids, uuids and clocks are deterministic-ish but unreplayable)."""
        sufs = _suffixes(expanded)
        if sufs & _WALL_CLOCK or expanded in _AMBIENT_FNS:
            return True
        return self._is_ambient_rng(expanded)

    # -- statement walk -----------------------------------------------
    def scan_body(self, stmts: list[ast.stmt]) -> None:
        # first pass: nested def names (forward refs in callbacks)
        for node in ast.walk(ast.Module(body=list(stmts), type_ignores=[])):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name not in self.nested_names:
                    self.nested_names[node.name] = f"{self.qual}.{node.name}"
        for stmt in stmts:
            self._scan_stmt(stmt)

    def _scan_stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            self.nested.append(stmt)
            self.add_call(
                {"kind": "nested", "qual": f"{self.qual}.{stmt.name}",
                 "line": stmt.lineno}
            )
            return
        if isinstance(stmt, ast.ClassDef):
            return  # local classes: out of scope for the deep pass
        if isinstance(stmt, ast.Global):
            self.globals.update(stmt.names)
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            self._scan_assign(stmt)
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            kind, detail = self._classify(stmt.value)
            if kind == "ambient" and self._returns_generator(stmt.value):
                self.ambient_return = True
            if isinstance(stmt.value, ast.Call):
                ref = self._ref_for(stmt.value.func, stmt.lineno)
                if ref is not None:
                    self.return_refs.append(ref)
        self._scan_exprs(stmt)
        for field in ("body", "orelse", "finalbody"):
            for sub in getattr(stmt, field, []):
                self._scan_stmt(sub)
        for handler in getattr(stmt, "handlers", []):
            for sub in handler.body:
                self._scan_stmt(sub)

    def _returns_generator(self, expr: ast.AST) -> bool:
        if isinstance(expr, ast.Call):
            dotted = dotted_name(expr.func)
            if dotted is not None:
                tail = self.mod._expand(dotted).rsplit(".", 1)[-1]
                return tail in _GEN_CTORS or tail in _CLEAN_RNG_FNS
        if isinstance(expr, ast.Name):
            return expr.id in self.gen_locals
        return False

    def _scan_assign(self, stmt: ast.stmt) -> None:
        value = getattr(stmt, "value", None)
        targets = (
            stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        )
        names = [t.id for t in targets if isinstance(t, ast.Name)]
        # global mutation: assignment to a declared-global name
        for name in names:
            if name in self.globals:
                self._effect(
                    "global-mutation", stmt,
                    f"assignment to global {name!r}",
                )
        for t in targets:
            if (
                isinstance(t, ast.Subscript)
                and dotted_name(t.value) is not None
                and self.mod._expand(dotted_name(t.value)).endswith("os.environ")
            ):
                self._effect("global-mutation", stmt, "os.environ mutation")
            # self.<attr> = ClassName(...): record the attribute's type
            if (
                isinstance(t, ast.Attribute)
                and isinstance(t.value, ast.Name)
                and t.value.id == "self"
                and self.cls is not None
                and isinstance(value, ast.Call)
            ):
                dotted = dotted_name(value.func)
                if dotted is not None:
                    attrs = self.mod.classes.get(self.cls, {}).get(
                        "attr_types", {}
                    )
                    attrs.setdefault(t.attr, self.mod._expand(dotted))
        if value is None or not names:
            return
        if isinstance(value, ast.Call):
            ctor = dotted_name(value.func)
            if ctor is not None:
                expanded = self.mod._expand(ctor)
                for name in names:
                    self.instance_types.setdefault(name, expanded)
        kind, detail = self._classify(value)
        for name in names:
            if kind in ("ambient", "clean"):
                self.taint[name] = kind
            if self._returns_generator(value):
                self.gen_locals.add(name)
        if kind == "call" and any(_RNG_NAME.search(n) for n in names):
            # rng-ish name bound to a project call: provenance depends on
            # whether the callee returns an ambient generator (resolved
            # against the whole graph by the driver)
            line = getattr(stmt, "lineno", 1)
            if not self.mod._suppressed(line, "seed-provenance"):
                self.rng_sites.append(
                    {
                        "rule": "FLOW006",
                        "line": line,
                        "provenance": "call",
                        "ref": detail,
                        "detail": f"{' = '.join(names)} assigned from call",
                    }
                )

    def _scan_exprs(self, stmt: ast.stmt) -> None:
        """Expression-level scan of one statement (not its block bodies)."""
        blocks: list[list[ast.stmt]] = [
            getattr(stmt, f, []) for f in ("body", "orelse", "finalbody")
        ]
        nested_stmts = {
            id(s) for block in blocks for s in block
        } | {id(s) for h in getattr(stmt, "handlers", []) for s in h.body}

        def walk(node: ast.AST) -> None:
            for child in ast.iter_child_nodes(node):
                if id(child) in nested_stmts or isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    continue
                self._visit_expr(child)
                walk(child)

        walk(stmt)
        # the statement itself may be the interesting node (For, With...)
        self._visit_expr(stmt)

    def _visit_expr(self, node: ast.AST) -> None:
        if isinstance(node, (ast.For, ast.comprehension)):
            it = node.iter
            if isinstance(it, ast.Set) or (
                isinstance(it, ast.Call)
                and dotted_name(it.func) in ("set", "frozenset")
            ):
                self._effect(
                    "unordered-iter", node if isinstance(node, ast.For) else it,
                    "iteration over an unordered set",
                )
        if not isinstance(node, ast.Call):
            return
        self._scan_call(node)

    def _scan_call(self, call: ast.Call) -> None:
        self.mod._maybe_register(call)
        dotted = dotted_name(call.func)
        if dotted is None:
            # ``super().meth(...)``: the func is an Attribute over a Call,
            # so it has no dotted name — catch it before bailing out.
            if (
                isinstance(call.func, ast.Attribute)
                and isinstance(call.func.value, ast.Call)
                and isinstance(call.func.value.func, ast.Name)
                and call.func.value.func.id == "super"
                and self.cls is not None
            ):
                self.add_call(
                    {"kind": "super", "cls": self.cls,
                     "method": call.func.attr, "line": call.lineno}
                )
            return
        expanded = self.mod._expand(dotted)
        sufs = _suffixes(expanded)
        tail = expanded.rsplit(".", 1)[-1]
        # ---- intrinsic effects
        hits = sufs & _WALL_CLOCK
        if hits:
            self._effect("wall-clock", call, f"{expanded}()")
        elif self._is_ambient_rng(expanded):
            self._effect("ambient-rng", call, f"{expanded}()")
        elif tail == "default_rng" and not (call.args or call.keywords):
            self._effect("ambient-rng", call, "unseeded default_rng()")
        if self._is_fs_write(call, expanded, sufs, tail):
            self._effect("fs-write", call, f"{expanded}(...)")
        # ---- seed provenance: generator creation sites
        if tail in _GEN_CTORS:
            kind, detail = self._classify_call(call)
            line = call.lineno
            if not self.mod._suppressed(line, "seed-provenance"):
                if kind == "ambient":
                    self.rng_sites.append(
                        {"rule": "FLOW006", "line": line,
                         "provenance": "ambient",
                         "detail": f"{tail}(...) seeded from {detail}"}
                    )
                elif kind == "call":
                    self.rng_sites.append(
                        {"rule": "FLOW006", "line": line,
                         "provenance": "call", "ref": detail,
                         "detail": f"{tail}(...) seeded from a call"}
                    )
        # ---- call-graph references
        if isinstance(call.func, ast.Name) and call.func.id == "super":
            pass  # the interesting node is the enclosing attribute call
        else:
            ref = self._ref_for(call.func, call.lineno)
            if ref is not None:
                self.add_call(ref)
        # ---- callback references: function-valued arguments
        dispatch = tail in _DISPATCH
        for arg in list(call.args) + [kw.value for kw in call.keywords]:
            if isinstance(arg, (ast.Name, ast.Attribute)):
                ref = self._ref_for(arg, call.lineno)
                if ref is not None:
                    self.add_call(ref)
            if dispatch:
                self._check_capture(arg, call.lineno)
            if isinstance(arg, ast.Lambda):
                # fold the lambda body into this function's scan
                self._visit_expr(arg.body)
                for sub in ast.walk(arg.body):
                    self._visit_expr(sub)

    def _check_capture(self, arg: ast.AST, line: int) -> None:
        """FLOW007: a lambda/nested def crossing a pool boundary while
        closing over a local generator."""
        free: set[str] = set()
        if isinstance(arg, ast.Lambda):
            bound = {a.arg for a in arg.args.args + arg.args.kwonlyargs}
            free = {
                n.id
                for n in ast.walk(arg.body)
                if isinstance(n, ast.Name) and n.id not in bound
            }
        elif isinstance(arg, ast.Name) and arg.id in self.nested_names:
            node = next(
                (n for n in self.nested if n.name == arg.id), None
            )
            if node is not None:
                bound = {a.arg for a in node.args.args + node.args.kwonlyargs}
                free = {
                    n.id
                    for n in ast.walk(node)
                    if isinstance(n, ast.Name) and n.id not in bound
                }
        captured = sorted(free & self.gen_locals)
        if captured and not self.mod._suppressed(line, "rng-boundary"):
            self.rng_sites.append(
                {
                    "rule": "FLOW007",
                    "line": line,
                    "provenance": "capture",
                    "detail": (
                        f"generator {captured[0]!r} captured by a closure "
                        f"crossing a pool/worker boundary"
                    ),
                }
            )

    def _is_fs_write(
        self, call: ast.Call, expanded: str, sufs: set[str], tail: str
    ) -> bool:
        if tail in _FS_SUFFIXES:
            return True
        if sufs & _FS_FULL:
            return True
        if expanded in ("open", "io.open"):
            mode = None
            if len(call.args) >= 2:
                mode = call.args[1]
            for kw in call.keywords:
                if kw.arg == "mode":
                    mode = kw.value
            if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
                return bool(_WRITE_MODES.search(mode.value))
        return False


def extract_module(path: str, source: str, module: str) -> dict:
    """Summary dict for one module (see module docstring).  The file
    must already be known to parse; callers filter out E999 files."""
    tree = ast.parse(source, filename=path)
    return _ModuleScanner(path, module, tree, source).run()


def extract_task(path: str, source: str, module: str) -> dict:
    """Module-level pool entry point for parallel extraction."""
    return extract_module(path, source, module)
