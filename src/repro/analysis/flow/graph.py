"""Project call graph + effect propagation for the deep pass.

Takes the per-module summaries from :mod:`extract`, resolves the
symbolic call references into a node graph (``module:qualname``),
propagates intrinsic effects to fixpoint, and emits the raw FLOW
findings — plain dicts, so the run-level cache can store them as-is.

Everything here is deterministic by construction: modules, functions,
edges and worklists are always iterated in sorted order, and chains
are shortest-path BFS over sorted adjacency, so the same tree always
produces byte-identical findings.
"""

from __future__ import annotations

from collections import deque

from repro.analysis.rules.flow import EFFECT_RULES

__all__ = ["ProjectGraph"]

#: human-readable effect names for messages.
_EFFECT_TEXT = {
    "wall-clock": "a wall-clock read",
    "ambient-rng": "ambient randomness",
    "unordered-iter": "unordered-set iteration",
    "global-mutation": "global-state mutation",
    "fs-write": "a filesystem write",
}


def _node(module: str, qual: str) -> str:
    return f"{module}:{qual}"


def _pretty(node_id: str) -> str:
    return node_id.replace(":", ".", 1)


class ProjectGraph:
    """Resolved call graph over one set of module summaries."""

    def __init__(self, summaries: list[dict]) -> None:
        self.summaries = {s["module"]: s for s in summaries}
        #: node id -> (module, qual, function info)
        self.functions: dict[str, tuple[str, str, dict]] = {}
        #: (module, class name) -> class info
        self.classes: dict[tuple[str, str], dict] = {}
        for module in sorted(self.summaries):
            summ = self.summaries[module]
            for qual in sorted(summ["functions"]):
                self.functions[_node(module, qual)] = (
                    module, qual, summ["functions"][qual],
                )
            for cls in sorted(summ["classes"]):
                self.classes[(module, cls)] = summ["classes"][cls]
        self.edges: dict[str, list[str]] = {}
        self.effects: dict[str, set[str]] = {}
        self.ambient_returns: dict[str, bool] = {}
        self._ambient_via: dict[str, str] = {}
        self._build_edges()
        self._propagate_effects()
        self._propagate_ambient_returns()

    # -- reference resolution -----------------------------------------
    def _locate_class(self, dotted: str) -> tuple[str, str] | None:
        parts = dotted.split(".")
        for i in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:i])
            rest = ".".join(parts[i:])
            if module in self.summaries and (module, rest) in self.classes:
                return (module, rest)
        return None

    def _method(
        self, module: str, cls: str, meth: str, seen: set | None = None
    ) -> str | None:
        """Resolve a method against a class, walking base classes."""
        seen = seen if seen is not None else set()
        key = (module, cls)
        if key in seen or key not in self.classes:
            return None
        seen.add(key)
        info = self.classes[key]
        if meth in info["methods"]:
            return _node(module, f"{cls}.{meth}")
        for base in info["bases"]:
            loc = self._locate_class(base)
            if loc is not None:
                found = self._method(loc[0], loc[1], meth, seen)
                if found is not None:
                    return found
        return None

    def _resolve_dotted(self, dotted: str, depth: int = 0) -> str | None:
        """Resolve an import-expanded dotted name to a node id."""
        parts = dotted.split(".")
        for i in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:i])
            rest = ".".join(parts[i:])
            if module not in self.summaries:
                continue
            summ = self.summaries[module]
            if rest in summ["functions"]:
                return _node(module, rest)
            if (module, rest) in self.classes:
                return self._method(module, rest, "__init__")
            head, _, tail = rest.partition(".")
            if tail and (module, head) in self.classes:
                return self._method(module, head, tail)
            # one-hop re-export: ``from repro.parallel import make_pool``
            # where repro/parallel/__init__.py itself imports make_pool.
            if head in summ["imports"] and depth < 4:
                target = summ["imports"][head]
                expanded = f"{target}.{tail}" if tail else target
                return self._resolve_dotted(expanded, depth + 1)
            return None
        return None

    def resolve(self, module: str, ref: dict) -> str | None:
        """Resolve one symbolic call reference from ``module``."""
        kind = ref["kind"]
        if kind == "name":
            return self._resolve_dotted(ref["ref"])
        if kind == "nested":
            node_id = _node(module, ref["qual"])
            return node_id if node_id in self.functions else None
        if kind == "self":
            return self._method(module, ref["cls"], ref["method"])
        if kind == "super":
            info = self.classes.get((module, ref["cls"]))
            if info is None:
                return None
            for base in info["bases"]:
                loc = self._locate_class(base)
                if loc is not None:
                    found = self._method(loc[0], loc[1], ref["method"])
                    if found is not None:
                        return found
            return None
        if kind == "instance":
            loc = self._locate_class(ref["cls_ref"])
            if loc is None:
                return None
            return self._method(loc[0], loc[1], ref["method"])
        if kind == "attr":
            info = self.classes.get((module, ref["cls"]))
            if info is None:
                return None
            target = info["attr_types"].get(ref["attr"])
            if target is None:
                return None
            loc = self._locate_class(target)
            if loc is None:
                return None
            return self._method(loc[0], loc[1], ref["method"])
        return None

    # -- fixpoints ----------------------------------------------------
    def _build_edges(self) -> None:
        for node_id in sorted(self.functions):
            module, _qual, info = self.functions[node_id]
            targets: set[str] = set()
            for ref in info["calls"]:
                target = self.resolve(module, ref)
                if target is not None and target != node_id:
                    targets.add(target)
            self.edges[node_id] = sorted(targets)

    def _propagate_effects(self) -> None:
        callers: dict[str, set[str]] = {n: set() for n in self.functions}
        for node_id, targets in self.edges.items():
            for target in targets:
                callers[target].add(node_id)
        for node_id, (_m, _q, info) in self.functions.items():
            self.effects[node_id] = {e["effect"] for e in info["intrinsic"]}
        work = deque(sorted(self.functions))
        while work:
            node_id = work.popleft()
            for caller in sorted(callers[node_id]):
                missing = self.effects[node_id] - self.effects[caller]
                if missing:
                    self.effects[caller] |= missing
                    work.append(caller)

    def _propagate_ambient_returns(self) -> None:
        for node_id, (_m, _q, info) in self.functions.items():
            self.ambient_returns[node_id] = bool(info["ambient_return"])
        changed = True
        while changed:
            changed = False
            for node_id in sorted(self.functions):
                if self.ambient_returns[node_id]:
                    continue
                module, _qual, info = self.functions[node_id]
                for ref in info["return_refs"]:
                    target = self.resolve(module, ref)
                    if target is not None and self.ambient_returns[target]:
                        self.ambient_returns[node_id] = True
                        self._ambient_via[node_id] = target
                        changed = True
                        break

    # -- chains -------------------------------------------------------
    def chain(self, entry: str, effect: str) -> list[str] | None:
        """Shortest entry->leaf call chain ending at a node with an
        *intrinsic* occurrence of ``effect`` (BFS, sorted adjacency)."""
        prev: dict[str, str | None] = {entry: None}
        queue = deque([entry])
        while queue:
            node_id = queue.popleft()
            info = self.functions[node_id][2]
            if any(e["effect"] == effect for e in info["intrinsic"]):
                path = [node_id]
                while prev[path[-1]] is not None:
                    path.append(prev[path[-1]])
                return list(reversed(path))
            for target in self.edges[node_id]:
                if target not in prev:
                    prev[target] = node_id
                    queue.append(target)
        return None

    def ambient_chain(self, start: str) -> list[str]:
        """Helper chain explaining why ``start`` returns an ambient
        generator (follows the recorded fixpoint witnesses)."""
        path = [start]
        while path[-1] in self._ambient_via:
            path.append(self._ambient_via[path[-1]])
        return path

    # -- entry points -------------------------------------------------
    def entries(self) -> list[str]:
        """Sim-critical entry points: public functions in entry-scope
        modules, plus anything registered with ``register_experiment``."""
        out: set[str] = set()
        for module in sorted(self.summaries):
            summ = self.summaries[module]
            if summ["entry_scope"]:
                for qual, info in summ["functions"].items():
                    if info["public"]:
                        out.add(_node(module, qual))
            for ref in summ["registered"]:
                target = self.resolve(module, ref)
                if target is not None:
                    out.add(target)
        return sorted(out)

    # -- findings -----------------------------------------------------
    def findings(self) -> list[dict]:
        raw: list[dict] = []
        raw.extend(self._purity_findings())
        raw.extend(self._seed_findings())
        raw.sort(
            key=lambda f: (f["path"], f["line"], f["rule"], f["message"])
        )
        return raw

    def _purity_findings(self) -> list[dict]:
        out: list[dict] = []
        for entry in self.entries():
            module, qual, info = self.functions[entry]
            for effect in sorted(self.effects[entry] & set(EFFECT_RULES)):
                chain = self.chain(entry, effect)
                if chain is None:  # pragma: no cover - effects imply a chain
                    continue
                leaf_mod, _leaf_qual, leaf_info = self.functions[chain[-1]]
                site = min(
                    (e for e in leaf_info["intrinsic"] if e["effect"] == effect),
                    key=lambda e: (e["line"], e["detail"]),
                )
                leaf_path = self.summaries[leaf_mod]["path"]
                pretty_chain = " -> ".join(_pretty(n) for n in chain)
                message = (
                    f"{_pretty(entry)} can reach {_EFFECT_TEXT[effect]} "
                    f"({site['detail']} at {leaf_path}:{site['line']}); "
                    f"chain: {pretty_chain}"
                )
                out.append(
                    {
                        "rule": EFFECT_RULES[effect],
                        "path": self.summaries[module]["path"],
                        "line": info["line"],
                        "entry": entry,
                        "effect": effect,
                        "chain": chain,
                        "site": {
                            "path": leaf_path,
                            "line": site["line"],
                            "detail": site["detail"],
                        },
                        "message": message,
                    }
                )
        return out

    def _seed_findings(self) -> list[dict]:
        out: list[dict] = []
        for module in sorted(self.summaries):
            summ = self.summaries[module]
            if not summ["entry_scope"]:
                continue
            path = summ["path"]
            for qual in sorted(summ["functions"]):
                info = summ["functions"][qual]
                node_id = _node(module, qual)
                for site in info["rng_sites"]:
                    finding = self._seed_site_finding(
                        module, path, node_id, site
                    )
                    if finding is not None:
                        out.append(finding)
            for site in summ["module_rng"]:
                out.append(
                    {
                        "rule": "FLOW007",
                        "path": path,
                        "line": site["line"],
                        "entry": f"{module}:<module>",
                        "effect": "rng-boundary",
                        "chain": [f"{module}:<module>"],
                        "site": {
                            "path": path,
                            "line": site["line"],
                            "detail": site["detail"],
                        },
                        "message": (
                            f"{module}: {site['detail']} — module-level "
                            f"generators are shared across every caller and "
                            f"worker; derive one per call from a seed "
                            f"argument (rngutil.seedseq_for)"
                        ),
                    }
                )
        return out

    def _seed_site_finding(
        self, module: str, path: str, node_id: str, site: dict
    ) -> dict | None:
        base = {
            "rule": site["rule"],
            "path": path,
            "line": site["line"],
            "entry": node_id,
            "site": {
                "path": path,
                "line": site["line"],
                "detail": site["detail"],
            },
        }
        if site["provenance"] == "ambient":
            return {
                **base,
                "effect": "seed-provenance",
                "chain": [node_id],
                "message": (
                    f"{_pretty(node_id)}: {site['detail']} — every "
                    f"generator in sim-critical code must derive from a "
                    f"seed parameter or rngutil.seedseq_for"
                ),
            }
        if site["provenance"] == "capture":
            return {
                **base,
                "effect": "rng-boundary",
                "chain": [node_id],
                "message": (
                    f"{_pretty(node_id)}: {site['detail']} — pass a seed "
                    f"and derive a per-task generator inside the worker"
                ),
            }
        if site["provenance"] == "call":
            target = self.resolve(module, site["ref"])
            if target is None or not self.ambient_returns.get(target, False):
                return None
            chain = [node_id] + self.ambient_chain(target)
            pretty_chain = " -> ".join(_pretty(n) for n in chain)
            return {
                **base,
                "effect": "seed-provenance",
                "chain": chain,
                "message": (
                    f"{_pretty(node_id)}: {site['detail']} whose callee "
                    f"returns an ambient-seeded generator; chain: "
                    f"{pretty_chain}"
                ),
            }
        return None
