"""Content-addressed cache for the deep analysis pass.

Two granularities, both under ``.repro-cache/analysis/`` by default:

* **file entries** (``file-<key>.json``) — one module summary, keyed
  on ``ANALYSIS_VERSION | module | sha256(source)``.  Editing one file
  re-extracts only that file.
* **run entries** (``run-<key>.json``) — the raw FLOW findings for a
  whole tree, keyed on the sorted set of file keys.  An unchanged tree
  skips graph construction entirely.

Same validity rules as the result cache (:mod:`repro.parallel.cache`):
writes are atomic (temp + fsync + rename), a corrupt or
version-mismatched entry is a miss, never an error.  Raw findings are
cached *before* selection filtering and baseline matching, so one
entry serves every ``--select``/``--baseline`` configuration.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.analysis.flow.extract import ANALYSIS_VERSION
from repro.parallel.journal import atomic_write_text

__all__ = ["AnalysisCache", "DEFAULT_ANALYSIS_CACHE_DIR"]

DEFAULT_ANALYSIS_CACHE_DIR = ".repro-cache/analysis"


def _digest(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:20]


class AnalysisCache:
    """File + run cache rooted at one directory."""

    def __init__(self, root: str | Path = DEFAULT_ANALYSIS_CACHE_DIR) -> None:
        self.root = Path(root)

    # -- keys ---------------------------------------------------------
    @staticmethod
    def file_key(module: str, source: str) -> str:
        return _digest(f"{ANALYSIS_VERSION}|{module}|{_digest(source)}")

    @staticmethod
    def run_key(file_keys: list[str]) -> str:
        return _digest(f"{ANALYSIS_VERSION}|" + "|".join(sorted(file_keys)))

    # -- file entries -------------------------------------------------
    def load_file(self, key: str) -> dict | None:
        entry = self.root / f"file-{key}.json"
        try:
            data = json.loads(entry.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if (
            not isinstance(data, dict)
            or data.get("version") != ANALYSIS_VERSION
        ):
            return None
        return data

    def store_file(self, key: str, summary: dict) -> None:
        self._write(f"file-{key}.json", summary)

    # -- run entries --------------------------------------------------
    def load_run(self, key: str) -> list[dict] | None:
        entry = self.root / f"run-{key}.json"
        try:
            data = json.loads(entry.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return None
        if (
            not isinstance(data, dict)
            or data.get("version") != ANALYSIS_VERSION
            or not isinstance(data.get("findings"), list)
        ):
            return None
        return data["findings"]

    def store_run(self, key: str, findings: list[dict]) -> None:
        self._write(
            f"run-{key}.json",
            {"version": ANALYSIS_VERSION, "findings": findings},
        )

    def _write(self, name: str, payload: dict) -> None:
        self.root.mkdir(parents=True, exist_ok=True)
        text = json.dumps(payload, indent=None, sort_keys=True)
        try:
            atomic_write_text(self.root / name, text)
        except OSError:  # cache is best-effort: never fail the lint run
            pass
