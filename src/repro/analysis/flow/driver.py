"""Deep-pass driver: sources in, raw FLOW findings out.

Orchestration only — extraction lives in :mod:`extract`, resolution
and fixpoints in :mod:`graph`, persistence in :mod:`cache`.  The
driver names the modules, consults the cache, fans extraction out over
a :class:`repro.parallel.pool.ShardPool` when one is supplied, and
reports cache hit/miss statistics so callers (and the acceptance
tests) can verify the second run of an unchanged tree did no work.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.flow.cache import AnalysisCache
from repro.analysis.flow.extract import extract_module
from repro.analysis.flow.graph import ProjectGraph

__all__ = ["analyze_sources", "module_names"]


def module_names(paths: list[str]) -> dict[str, str]:
    """Dotted module name for each display path.

    Package membership is inferred from the analyzed set itself: a
    directory is a package exactly when its ``__init__.py`` is among
    the paths, and the module name is the chain of enclosing packages
    plus the stem.  This names ``src/repro/htm/machine.py`` as
    ``repro.htm.machine`` and a fixture mini-package's
    ``registry/reg/exp.py`` as ``reg.exp`` with no layout knowledge.
    """
    path_set = {Path(p).as_posix() for p in paths}
    names: dict[str, str] = {}
    for path in paths:
        p = Path(path)
        bits = [] if p.name == "__init__.py" else [p.stem]
        parent = p.parent
        while (parent / "__init__.py").as_posix() in path_set:
            bits.insert(0, parent.name)
            parent = parent.parent
        names[path] = ".".join(bits) if bits else p.stem
    return names


def _extract_one(path: str, source: str, module: str) -> dict | None:
    """Pool task: one module summary, or None if the file won't parse
    (the engine reports those as E999 separately)."""
    try:
        return extract_module(path, source, module)
    except SyntaxError:
        return None


def analyze_sources(
    sources: dict[str, str],
    *,
    cache_dir: str | Path | None = None,
    pool=None,
) -> tuple[list[dict], dict]:
    """Run the deep pass over in-memory sources.

    Returns ``(raw findings, stats)`` where stats counts
    ``file_hits`` / ``file_misses`` / ``run_hit``.  Raw findings are
    unfiltered: the engine applies selection and baselines so cached
    runs stay configuration-independent.
    """
    paths = sorted(sources)
    names = module_names(paths)
    stats = {"file_hits": 0, "file_misses": 0, "run_hit": 0}
    cache = AnalysisCache(cache_dir) if cache_dir is not None else None

    file_keys = {
        path: AnalysisCache.file_key(names[path], sources[path])
        for path in paths
    }
    run_key = AnalysisCache.run_key(list(file_keys.values()))
    if cache is not None:
        cached = cache.load_run(run_key)
        if cached is not None:
            stats["run_hit"] = 1
            stats["file_hits"] = len(paths)
            return cached, stats

    summaries: dict[str, dict | None] = {}
    missing: list[str] = []
    for path in paths:
        summary = cache.load_file(file_keys[path]) if cache else None
        if summary is not None and summary.get("path") == path:
            stats["file_hits"] += 1
            summaries[path] = summary
        else:
            missing.append(path)
    stats["file_misses"] = len(missing)

    tasks = [(path, sources[path], names[path]) for path in missing]
    if pool is not None and len(tasks) > 1:
        extracted = pool.starmap(_extract_one, tasks)
    else:
        extracted = [_extract_one(*task) for task in tasks]
    for path, summary in zip(missing, extracted):
        summaries[path] = summary
        if summary is not None and cache is not None:
            cache.store_file(file_keys[path], summary)

    parsed = [summaries[path] for path in paths if summaries[path]]
    findings = ProjectGraph(parsed).findings()
    if cache is not None:
        cache.store_run(run_key, findings)
    return findings, stats
