"""Baseline file for deep-pass findings.

A FLOW finding that is understood and accepted (e.g. the chaos
harness deliberately corrupting artifacts) is recorded in a committed
baseline — ``.simlint-baseline.json`` at the repo root — instead of a
pragma, because the finding belongs to a *chain*, not a line.  Each
entry carries a mandatory justification, and matched findings are
surfaced in the JSON report's ``baselined`` section so the ledger
stays auditable.

Fingerprints are line-independent — ``(rule, entry node, leaf site
detail)`` — so reformatting a file does not invalidate the baseline,
while any change to the chain's endpoints does.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = [
    "DEFAULT_BASELINE_PATH",
    "apply_baseline",
    "fingerprint",
    "load_baseline",
    "render_baseline",
]

DEFAULT_BASELINE_PATH = ".simlint-baseline.json"
BASELINE_VERSION = 1


def fingerprint(raw: dict) -> tuple[str, str, str]:
    """Line-independent identity of one raw FLOW finding."""
    return (raw["rule"], raw["entry"], raw["site"]["detail"])


def load_baseline(path: str | Path) -> list[dict]:
    """Baseline entries from ``path``.  Raises ``ValueError`` on a
    malformed file — a silently dropped baseline would un-gate CI."""
    try:
        data = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError as exc:
        raise ValueError(f"cannot read baseline {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ValueError(f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(data, dict) or not isinstance(data.get("entries"), list):
        raise ValueError(f"baseline {path}: expected {{'entries': [...]}}")
    entries = []
    for i, entry in enumerate(data["entries"]):
        missing = {"rule", "entry", "site", "justification"} - set(entry)
        if missing:
            raise ValueError(
                f"baseline {path}: entry {i} missing {sorted(missing)}"
            )
        entries.append(entry)
    return entries


def apply_baseline(
    raw_findings: list[dict], entries: list[dict]
) -> tuple[list[dict], list[dict]]:
    """Split raw findings into ``(kept, baselined)``.

    ``baselined`` items carry the matched justification so reports can
    surface *why* each accepted finding is accepted.
    """
    by_print = {
        (e["rule"], e["entry"], e["site"]): e["justification"]
        for e in entries
    }
    kept: list[dict] = []
    baselined: list[dict] = []
    for raw in raw_findings:
        justification = by_print.get(fingerprint(raw))
        if justification is None:
            kept.append(raw)
        else:
            baselined.append(
                {
                    "rule": raw["rule"],
                    "entry": raw["entry"],
                    "site": raw["site"]["detail"],
                    "path": raw["path"],
                    "line": raw["line"],
                    "message": raw["message"],
                    "justification": justification,
                }
            )
    return kept, baselined


def render_baseline(
    raw_findings: list[dict],
    justification: str = "TODO: justify this accepted finding",
) -> str:
    """Baseline JSON text covering ``raw_findings`` (``--write-baseline``).
    Every generated entry carries a placeholder justification that is
    expected to be edited before committing."""
    entries = sorted(
        {fingerprint(raw) for raw in raw_findings}
    )
    payload = {
        "version": BASELINE_VERSION,
        "entries": [
            {
                "rule": rule,
                "entry": entry,
                "site": site,
                "justification": justification,
            }
            for rule, entry, site in entries
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"
