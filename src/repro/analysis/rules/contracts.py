"""POL — project-contract rules (cross-file).

The simulator is extended by subclassing three protocol roots —
:class:`~repro.htm.conflict_policy.CyclePolicy`,
:class:`~repro.workloads.base.Workload` (and its ``Operation``), and
:class:`~repro.faults.injectors.NullInjector` — and registering the
subclass (``policy_from_name``, the workloads package ``__all__``).
A subclass that misspells a hook or forgets registration fails
*silently*: the base-class default runs instead, and an experiment
quietly measures the wrong thing.  These rules make the protocol
machine-checked.

The class graph is built textually (base names within the linted
files), which is exactly right for a project-local linter: every
protocol root lives in this repository.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Iterator

from repro.analysis.rules.base import FileContext, Finding, ProjectRule

__all__ = [
    "ProtocolMethodsRule",
    "RegistryNameRule",
    "RegistrationRule",
    "InjectorHookRule",
]

#: protocol root -> methods every concrete descendant must implement
CONTRACTS: dict[str, tuple[str, ...]] = {
    "CyclePolicy": ("decide",),
    "Workload": ("setup", "next_op", "tuned_delay_cycles"),
    "Operation": ("body",),
}

#: roots whose concrete descendants need their own ``name`` class attr
NAMED_ROOTS = ("CyclePolicy", "Workload")

#: fallback hook surface for NullInjector when the class itself is not
#: among the linted files (e.g. unit-test fixtures)
DEFAULT_INJECTOR_HOOKS = frozenset(
    {
        "arm",
        "on_begin_tx",
        "on_end_tx",
        "probe_duplicated",
        "stall_cycles",
        "noisy_context",
        "noisy_commit_duration",
    }
)

_ABSTRACT_DECORATORS = {"abstractmethod", "abstractproperty"}


@dataclass
class ClassInfo:
    name: str
    bases: list[str]
    methods: set[str] = field(default_factory=set)
    class_attrs: set[str] = field(default_factory=set)
    #: class-level ``name = "..."`` literal, if any
    name_value: str | None = None
    has_abstract: bool = False
    path: str = ""
    lineno: int = 0
    node: ast.ClassDef | None = None


def _last(name_node: ast.AST) -> str | None:
    if isinstance(name_node, ast.Name):
        return name_node.id
    if isinstance(name_node, ast.Attribute):
        return name_node.attr
    return None


def _collect_classes(ctxs: Iterable[FileContext]) -> dict[str, ClassInfo]:
    classes: dict[str, ClassInfo] = {}
    for ctx in ctxs:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            info = ClassInfo(
                name=node.name,
                bases=[b for b in map(_last, node.bases) if b],
                path=ctx.path,
                lineno=node.lineno,
                node=node,
            )
            for stmt in node.body:
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    info.methods.add(stmt.name)
                    for deco in stmt.decorator_list:
                        if _last(deco) in _ABSTRACT_DECORATORS:
                            info.has_abstract = True
                elif isinstance(stmt, ast.Assign):
                    for target in stmt.targets:
                        if isinstance(target, ast.Name):
                            info.class_attrs.add(target.id)
                            if target.id == "name" and isinstance(
                                stmt.value, ast.Constant
                            ) and isinstance(stmt.value.value, str):
                                info.name_value = stmt.value.value
                elif isinstance(stmt, ast.AnnAssign) and isinstance(
                    stmt.target, ast.Name
                ):
                    info.class_attrs.add(stmt.target.id)
                    if stmt.target.id == "name" and isinstance(
                        stmt.value, ast.Constant
                    ) and isinstance(stmt.value.value, str):
                        info.name_value = stmt.value.value
            # first definition wins (re-definitions only occur in tests)
            classes.setdefault(node.name, info)
    return classes


def _ancestor_chain(
    info: ClassInfo, classes: dict[str, ClassInfo]
) -> list[ClassInfo]:
    """``info`` plus every project-visible ancestor (cycle-safe)."""
    chain: list[ClassInfo] = []
    seen: set[str] = set()
    frontier = [info]
    while frontier:
        cur = frontier.pop(0)
        if cur.name in seen:
            continue
        seen.add(cur.name)
        chain.append(cur)
        for base in cur.bases:
            if base in classes:
                frontier.append(classes[base])
    return chain


def _descends_from(
    info: ClassInfo, root: str, classes: dict[str, ClassInfo]
) -> bool:
    if info.name == root:
        return False
    chain = _ancestor_chain(info, classes)
    return root in {c.name for c in chain[1:]} or any(
        root in c.bases for c in chain
    )


def _is_concrete(info: ClassInfo) -> bool:
    return not info.has_abstract and not info.name.startswith("_")


class ProtocolMethodsRule(ProjectRule):
    id = "POL001"
    summary = "protocol subclass missing a required method"
    rationale = (
        "a CyclePolicy without decide(), a Workload without "
        "setup/next_op/tuned_delay_cycles, or an Operation without "
        "body() either dies at instantiation deep inside a sweep or — "
        "worse — inherits a default and silently measures nothing."
    )

    def check_project(
        self, ctxs: Iterable[FileContext]
    ) -> Iterator[Finding]:
        classes = _collect_classes(ctxs)
        for info in classes.values():
            if not _is_concrete(info):
                continue
            for root, required in CONTRACTS.items():
                if not _descends_from(info, root, classes):
                    continue
                defined: set[str] = set()
                for cls in _ancestor_chain(info, classes):
                    if cls.name == root:
                        continue  # the root's own defs are abstract stubs
                    defined |= cls.methods | cls.class_attrs
                missing = [m for m in required if m not in defined]
                if missing and info.node is not None:
                    yield Finding(
                        info.path,
                        info.lineno,
                        1,
                        self.id,
                        f"{info.name} ({root} subclass) does not implement "
                        f"required protocol method(s): "
                        f"{', '.join(missing)}",
                    )


class RegistryNameRule(ProjectRule):
    id = "POL002"
    summary = "protocol subclass without its own registry `name`"
    rationale = (
        "policies and workloads are addressed by their `name` class "
        "attribute (reports, factories, stats digests); inheriting the "
        "root's placeholder makes two series indistinguishable in "
        "every table."
    )

    def check_project(
        self, ctxs: Iterable[FileContext]
    ) -> Iterator[Finding]:
        classes = _collect_classes(ctxs)
        for info in classes.values():
            if not _is_concrete(info):
                continue
            for root in NAMED_ROOTS:
                if not _descends_from(info, root, classes):
                    continue
                chain = _ancestor_chain(info, classes)
                has_name = any(
                    "name" in cls.class_attrs
                    for cls in chain
                    if cls.name != root
                )
                if not has_name:
                    yield Finding(
                        info.path,
                        info.lineno,
                        1,
                        self.id,
                        f"{info.name} ({root} subclass) must define its own "
                        f"`name` class attribute (the root's placeholder "
                        f"would collide in reports and factories)",
                    )


class RegistrationRule(ProjectRule):
    id = "POL003"
    summary = "concrete subclass not registered"
    rationale = (
        "an unregistered workload cannot be reached from the package "
        "API, and a policy name absent from policy_from_name cannot be "
        "selected by any experiment spec — dead extension code."
    )

    def check_project(
        self, ctxs: Iterable[FileContext]
    ) -> Iterator[Finding]:
        ctx_list = list(ctxs)
        classes = _collect_classes(ctx_list)
        yield from self._check_workload_exports(classes, ctx_list)
        yield from self._check_policy_factory(classes, ctx_list)

    # -- workloads must be exported from the package __init__ -------------
    def _check_workload_exports(
        self, classes: dict[str, ClassInfo], ctxs: list[FileContext]
    ) -> Iterator[Finding]:
        init_ctx = next(
            (
                c
                for c in ctxs
                if c.path.replace("\\", "/").endswith("workloads/__init__.py")
            ),
            None,
        )
        if init_ctx is None:
            return
        exported: set[str] = set()
        for node in ast.walk(init_ctx.tree):
            if isinstance(node, ast.Assign) and any(
                isinstance(t, ast.Name) and t.id == "__all__"
                for t in node.targets
            ):
                if isinstance(node.value, (ast.List, ast.Tuple)):
                    exported = {
                        e.value
                        for e in node.value.elts
                        if isinstance(e, ast.Constant)
                        and isinstance(e.value, str)
                    }
        for info in classes.values():
            if not _is_concrete(info):
                continue
            if "/workloads/" not in info.path.replace("\\", "/"):
                continue
            if not _descends_from(info, "Workload", classes):
                continue
            if info.name not in exported:
                yield Finding(
                    info.path,
                    info.lineno,
                    1,
                    self.id,
                    f"workload {info.name} is not exported in "
                    f"repro/workloads/__init__.py __all__ — unreachable "
                    f"from the package API",
                )

    # -- policy `name`s must appear in the policy_from_name factory --------
    def _check_policy_factory(
        self, classes: dict[str, ClassInfo], ctxs: list[FileContext]
    ) -> Iterator[Finding]:
        factory_ctx: FileContext | None = None
        factory_consts: set[str] = set()
        for ctx in ctxs:
            for node in ast.walk(ctx.tree):
                if (
                    isinstance(node, ast.FunctionDef)
                    and node.name == "policy_from_name"
                ):
                    factory_ctx = ctx
                    factory_consts = {
                        n.value
                        for n in ast.walk(node)
                        if isinstance(n, ast.Constant)
                        and isinstance(n.value, str)
                    }
        if factory_ctx is None:
            return
        for info in classes.values():
            if not _is_concrete(info) or info.path != factory_ctx.path:
                continue
            if not _descends_from(info, "CyclePolicy", classes):
                continue
            if info.name_value is not None and (
                info.name_value not in factory_consts
            ):
                yield Finding(
                    info.path,
                    info.lineno,
                    1,
                    self.id,
                    f"policy {info.name} (name={info.name_value!r}) is not "
                    f"selectable via policy_from_name — register it or "
                    f"mark the class private",
                )


class InjectorHookRule(ProjectRule):
    id = "POL004"
    summary = "fault injector defines an unknown hook"
    rationale = (
        "the machine calls injector hooks by name; a typo "
        "(on_begin_txn) is not an error — the fault simply never "
        "fires and the robustness sweep silently measures a clean run."
    )

    def check_project(
        self, ctxs: Iterable[FileContext]
    ) -> Iterator[Finding]:
        classes = _collect_classes(ctxs)
        root = classes.get("NullInjector")
        hooks = (
            {m for m in root.methods if not m.startswith("_")}
            if root is not None
            else set(DEFAULT_INJECTOR_HOOKS)
        )
        for info in classes.values():
            if info.name == "NullInjector":
                continue
            if not _descends_from(info, "NullInjector", classes):
                continue
            for method in sorted(info.methods):
                if method.startswith("_"):
                    continue
                if method not in hooks:
                    yield Finding(
                        info.path,
                        info.lineno,
                        1,
                        self.id,
                        f"injector {info.name} defines {method}() which is "
                        f"not part of the injector hook protocol "
                        f"({', '.join(sorted(hooks))}) — typo'd hooks "
                        f"silently never fire",
                    )
