"""DET — determinism rules for simulation-critical code.

The simulator's contract is bit-determinism under a seed: every stats
digest, ratio table, and throughput curve must replay exactly.  These
rules fence off the two classic leaks — wall-clock reads and
randomness that does not flow through :mod:`repro.rngutil` seeded
streams — inside the packages whose code runs under the event loop.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.rules.base import (
    FileContext,
    Finding,
    Rule,
    dotted_name,
)

__all__ = [
    "WallClockRule",
    "StdlibRandomRule",
    "NumpySingletonRule",
    "WorkerSeedRule",
]

#: ``module.function`` suffixes that read the host wall clock.
_WALL_CLOCK = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "datetime.now",
        "datetime.utcnow",
        "datetime.today",
        "date.today",
    }
)

#: Bare names that become wall-clock reads via ``from time import ...``.
_WALL_CLOCK_FROM = {
    "time": {"time", "time_ns", "monotonic", "monotonic_ns",
             "perf_counter", "perf_counter_ns", "process_time"},
    "datetime": {"datetime", "date"},
}

#: Legacy ``numpy.random`` singleton functions (global hidden state).
_NP_LEGACY = frozenset(
    {
        "seed", "random", "rand", "randn", "randint", "random_sample",
        "ranf", "sample", "choice", "shuffle", "permutation", "uniform",
        "normal", "standard_normal", "exponential", "poisson", "binomial",
        "beta", "gamma", "get_state", "set_state",
    }
)


def _call_suffixes(dotted: str) -> set[str]:
    """All ``tail`` joins of a dotted call: ``a.b.c`` -> {a.b.c, b.c, c}."""
    parts = dotted.split(".")
    return {".".join(parts[i:]) for i in range(len(parts))}


class WallClockRule(Rule):
    id = "DET001"
    summary = "wall-clock read inside simulation-critical code"
    rationale = (
        "time.time()/monotonic()/datetime.now() make results depend on "
        "host speed and run order; simulated time must come from "
        "Simulator.now.  Watchdog deadline checks are the one sanctioned "
        "use — suppress those lines with a justification."
    )
    scoped = True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        from_aliases: dict[str, str] = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module in _WALL_CLOCK_FROM:
                for alias in node.names:
                    if alias.name in _WALL_CLOCK_FROM[node.module]:
                        from_aliases[alias.asname or alias.name] = (
                            f"{node.module}.{alias.name}"
                        )
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            resolved = from_aliases.get(dotted, dotted)
            hits = _call_suffixes(resolved) & _WALL_CLOCK
            if hits:
                yield ctx.finding(
                    node,
                    self.id,
                    f"wall-clock call {resolved}() in simulation-critical "
                    f"code; use the simulator clock (sim.now) — or suppress "
                    f"with a justification if this is a watchdog deadline",
                )


class StdlibRandomRule(Rule):
    id = "DET002"
    summary = "stdlib random/secrets import in simulation-critical code"
    rationale = (
        "random.* draws from an unseeded (or globally shared) PRNG; one "
        "stray call desynchronizes every downstream stream.  All "
        "randomness must flow through repro.rngutil SeedSequence streams."
    )
    scoped = True

    _MODULES = frozenset({"random", "secrets"})

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    root = alias.name.split(".")[0]
                    if root in self._MODULES:
                        yield ctx.finding(
                            node,
                            self.id,
                            f"import of {alias.name!r}: route randomness "
                            f"through repro.rngutil seeded streams instead",
                        )
            elif isinstance(node, ast.ImportFrom):
                root = (node.module or "").split(".")[0]
                if root in self._MODULES and node.level == 0:
                    yield ctx.finding(
                        node,
                        self.id,
                        f"import from {node.module!r}: route randomness "
                        f"through repro.rngutil seeded streams instead",
                    )


class NumpySingletonRule(Rule):
    id = "DET003"
    summary = "numpy global-RNG singleton (or unseeded default_rng())"
    rationale = (
        "np.random.seed()/np.random.rand() share one hidden global "
        "generator across every component, and default_rng() without a "
        "seed is entropy-seeded; both break replay.  Derive Generators "
        "with rngutil.spawn_streams / stream_for."
    )
    scoped = True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = dotted_name(node.func)
            if dotted is None:
                continue
            parts = dotted.split(".")
            if dotted == "default_rng" and not (node.args or node.keywords):
                yield ctx.finding(
                    node,
                    self.id,
                    "default_rng() without a seed is entropy-seeded and "
                    "unreproducible; pass a SeedSequence/seed from "
                    "repro.rngutil",
                )
            elif (
                len(parts) >= 3
                and parts[-2] == "random"
                and parts[-3] in {"np", "numpy"}
            ):
                if parts[-1] in _NP_LEGACY:
                    yield ctx.finding(
                        node,
                        self.id,
                        f"legacy numpy singleton {dotted}(): hidden global "
                        f"state; use a seeded Generator from repro.rngutil",
                    )
                elif parts[-1] == "default_rng" and not (
                    node.args or node.keywords
                ):
                    yield ctx.finding(
                        node,
                        self.id,
                        "default_rng() without a seed is entropy-seeded and "
                        "unreproducible; pass a SeedSequence/seed from "
                        "repro.rngutil",
                    )


class WorkerSeedRule(Rule):
    id = "DET004"
    summary = "worker/shard entry function without an explicit seed argument"
    rationale = (
        "Functions that run in pool workers are the parallelism seam: if "
        "their randomness is not an *argument* (rng/seed/stream/seedseq), "
        "the stream they draw from depends on which process executed them, "
        "and rows stop being invariant to --jobs.  Worker entry functions "
        "must take their stream (or the seed it derives from) explicitly, "
        "and must never build an unseeded or global-singleton generator."
    )
    #: applies everywhere — worker functions live in experiments/,
    #: synthetic/ and parallel/, outside the DET001-003 scope dirs.
    scoped = False

    #: a function is a worker entry if a name segment is worker(s)/shard(s).
    _WORKER_NAME = re.compile(r"(^|_)(worker|shard)s?(_|$)")
    #: a parameter carries the stream if its name mentions any of these.
    _SEED_PARAM = re.compile(r"rng|seed|stream", re.IGNORECASE)

    @staticmethod
    def _param_names(node: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
        args = node.args
        params = [a.arg for a in args.posonlyargs + args.args + args.kwonlyargs]
        for star in (args.vararg, args.kwarg):
            if star is not None:
                params.append(star.arg)
        return params

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not self._WORKER_NAME.search(node.name):
                continue
            if not any(
                self._SEED_PARAM.search(p) for p in self._param_names(node)
            ):
                yield ctx.finding(
                    node,
                    self.id,
                    f"worker function {node.name!r} takes no rng/seed/stream "
                    f"parameter; a worker's randomness must arrive as an "
                    f"argument so its rows do not depend on execution "
                    f"placement (--jobs)",
                )
            for sub in ast.walk(node):
                if not isinstance(sub, ast.Call):
                    continue
                dotted = dotted_name(sub.func)
                if dotted is None:
                    continue
                parts = dotted.split(".")
                if parts[-1] == "default_rng" and not (
                    sub.args or sub.keywords
                ):
                    yield ctx.finding(
                        sub,
                        self.id,
                        f"unseeded default_rng() inside worker "
                        f"{node.name!r}: derive the generator from the "
                        f"worker's seed/stream argument",
                    )
                elif (
                    len(parts) >= 3
                    and parts[-2] == "random"
                    and parts[-3] in {"np", "numpy"}
                    and parts[-1] in _NP_LEGACY
                ):
                    yield ctx.finding(
                        sub,
                        self.id,
                        f"numpy global-RNG singleton {dotted}() inside "
                        f"worker {node.name!r}: workers must draw only from "
                        f"their seed/stream argument",
                    )
