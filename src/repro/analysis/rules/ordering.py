"""ORD — unordered-container iteration rules.

Python ``set`` iteration order depends on element hashes and insertion
history (and, for strings, on ``PYTHONHASHSEED``).  When such an order
reaches the event queue (probe fan-out, abort victim selection) or a
float accumulation, two runs of the "same" seed can diverge.  The fix
is always the same and cheap at simulation scale: iterate
``sorted(the_set)``.

Detection is conservative: a ``for``/comprehension iterable (or a
``sum(...)`` argument) is flagged only when it is *provably* a set —
a set literal/comprehension, a ``set()``/``frozenset()`` call, a set
operator on one of those, a local name assigned from one, or a call to
a function in the same file whose return annotation is a set type.
Membership tests, ``len``, ``min``/``max`` and ``sorted`` over sets are
all order-insensitive and never flagged.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.rules.base import FileContext, Finding, Rule, dotted_name

__all__ = ["SetIterationRule", "SetPopRule"]

_SET_ANNOTATION = re.compile(
    r"^(typing\.)?(AbstractSet|FrozenSet|MutableSet|Set|frozenset|set)\b"
)

#: set methods that return another set
_SET_METHODS = frozenset(
    {"intersection", "union", "difference", "symmetric_difference", "copy"}
)

#: calls that launder a set's order into a sequence without fixing it
_ORDER_PRESERVING_WRAPPERS = frozenset({"list", "tuple", "iter", "reversed"})


def _annotation_is_set(node: ast.AST | None) -> bool:
    if node is None:
        return False
    try:
        text = ast.unparse(node)
    except (ValueError, RecursionError):  # pragma: no cover - malformed
        return False
    return bool(_SET_ANNOTATION.match(text.strip()))


def _set_returning_functions(tree: ast.Module) -> set[str]:
    """Names of functions/methods in this file annotated ``-> set[...]``."""
    out: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            if _annotation_is_set(node.returns):
                out.add(node.name)
    return out


class _Scope:
    """Set-typed local names within one function (or the module body)."""

    def __init__(self) -> None:
        self.set_names: set[str] = set()


class _SetExprClassifier:
    def __init__(self, set_fns: set[str]) -> None:
        self.set_fns = set_fns

    def is_set(self, node: ast.AST, scope: _Scope) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Name):
            return node.id in scope.set_names
        if isinstance(node, ast.IfExp):
            return self.is_set(node.body, scope) or self.is_set(
                node.orelse, scope
            )
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self.is_set(node.left, scope) or self.is_set(
                node.right, scope
            )
        if isinstance(node, ast.Call):
            dotted = dotted_name(node.func)
            if dotted in {"set", "frozenset"}:
                return True
            if dotted is not None:
                last = dotted.rsplit(".", 1)[-1]
                # a.holders() where `def holders() -> set[int]` in file
                if last in self.set_fns:
                    return True
                # s.union(...) etc on a known set
                if last in _SET_METHODS and isinstance(
                    node.func, ast.Attribute
                ):
                    return self.is_set(node.func.value, scope)
                # list(s) / tuple(s): reorders nothing, still unordered
                if last in _ORDER_PRESERVING_WRAPPERS and node.args:
                    return self.is_set(node.args[0], scope)
        return False


class _FunctionWalker(ast.NodeVisitor):
    """Walks one scope body, tracking set-typed locals in statement
    order and reporting unordered iteration/pop sites."""

    def __init__(
        self,
        rule: "SetIterationRule | SetPopRule",
        ctx: FileContext,
        classify: _SetExprClassifier,
        findings: list[Finding],
    ) -> None:
        self.rule = rule
        self.ctx = ctx
        self.classify = classify
        self.findings = findings
        self.scope = _Scope()

    # -- nested scopes get their own walker --------------------------------
    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._walk_new_scope(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._walk_new_scope(node)

    def _walk_new_scope(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        walker = _FunctionWalker(
            self.rule, self.ctx, self.classify, self.findings
        )
        for arg in (
            list(node.args.posonlyargs)
            + list(node.args.args)
            + list(node.args.kwonlyargs)
        ):
            if _annotation_is_set(arg.annotation):
                walker.scope.set_names.add(arg.arg)
        for stmt in node.body:
            walker.visit(stmt)

    # -- assignments update the scope's type map ---------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        is_set = self.classify.is_set(node.value, self.scope)
        for target in node.targets:
            if isinstance(target, ast.Name):
                if is_set:
                    self.scope.set_names.add(target.id)
                else:
                    self.scope.set_names.discard(target.id)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name):
            if _annotation_is_set(node.annotation) or (
                node.value is not None
                and self.classify.is_set(node.value, self.scope)
            ):
                self.scope.set_names.add(node.target.id)
            else:
                self.scope.set_names.discard(node.target.id)
        self.generic_visit(node)

    # -- delegation to the concrete rule -----------------------------------
    def visit_For(self, node: ast.For) -> None:
        self.rule.on_for(self, node)
        self.generic_visit(node)

    def visit_comprehension_iters(self, node: ast.AST) -> None:
        for gen in getattr(node, "generators", []):
            self.rule.on_comprehension(self, gen)

    def visit_ListComp(self, node: ast.ListComp) -> None:
        self.visit_comprehension_iters(node)
        self.generic_visit(node)

    def visit_SetComp(self, node: ast.SetComp) -> None:
        self.visit_comprehension_iters(node)
        self.generic_visit(node)

    def visit_DictComp(self, node: ast.DictComp) -> None:
        self.visit_comprehension_iters(node)
        self.generic_visit(node)

    def visit_GeneratorExp(self, node: ast.GeneratorExp) -> None:
        self.visit_comprehension_iters(node)
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        self.rule.on_call(self, node)
        self.generic_visit(node)


class SetIterationRule(Rule):
    id = "ORD001"
    summary = "iteration over an unordered set"
    rationale = (
        "set iteration order depends on hashes and insertion history; "
        "when it reaches event scheduling or float accumulation it "
        "breaks seeded replay.  Iterate sorted(the_set) instead."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        findings: list[Finding] = []
        classify = _SetExprClassifier(_set_returning_functions(ctx.tree))
        walker = _FunctionWalker(self, ctx, classify, findings)
        for stmt in ctx.tree.body:
            walker.visit(stmt)
        yield from findings

    # -- hooks -------------------------------------------------------------
    def on_for(self, walker: _FunctionWalker, node: ast.For) -> None:
        if walker.classify.is_set(node.iter, walker.scope):
            walker.findings.append(
                walker.ctx.finding(
                    node.iter,
                    self.id,
                    "iteration over a set has no deterministic order; "
                    "use sorted(...) so scheduling and accumulation "
                    "order are seed-stable",
                )
            )

    def on_comprehension(
        self, walker: _FunctionWalker, gen: ast.comprehension
    ) -> None:
        if walker.classify.is_set(gen.iter, walker.scope):
            walker.findings.append(
                walker.ctx.finding(
                    gen.iter,
                    self.id,
                    "comprehension over a set has no deterministic order; "
                    "use sorted(...)",
                )
            )

    def on_call(self, walker: _FunctionWalker, node: ast.Call) -> None:
        # sum() over a set of floats accumulates in hash order
        if (
            dotted_name(node.func) == "sum"
            and node.args
            and walker.classify.is_set(node.args[0], walker.scope)
        ):
            walker.findings.append(
                walker.ctx.finding(
                    node,
                    self.id,
                    "sum() over a set accumulates in hash order (float "
                    "rounding becomes order-dependent); sum(sorted(...))",
                )
            )


class SetPopRule(SetIterationRule):
    id = "ORD002"
    summary = "set.pop() removes a hash-order-dependent element"
    rationale = (
        "set.pop() takes an arbitrary element — which one depends on "
        "the hash table layout.  Pop from a sorted list or use "
        "min()/max() + discard()."
    )

    def on_for(self, walker: _FunctionWalker, node: ast.For) -> None:
        return

    def on_comprehension(
        self, walker: _FunctionWalker, gen: ast.comprehension
    ) -> None:
        return

    def on_call(self, walker: _FunctionWalker, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr == "pop"
            and not node.args
            and not node.keywords
            and walker.classify.is_set(func.value, walker.scope)
        ):
            walker.findings.append(
                walker.ctx.finding(
                    node,
                    self.id,
                    "set.pop() removes an arbitrary (hash-order) element; "
                    "use min()/max() + discard() for a deterministic pick",
                )
            )
