"""ERR — exception-handling rules protecting the watchdog contract.

PR 1's hardened runner rests on one invariant: a watchdog
:class:`~repro.errors.ExperimentTimeoutError` (and ``KeyboardInterrupt``)
must *always* propagate — it is never retried, never recorded as a
transient failure, never swallowed.  A bare or broad ``except`` buried
anywhere under the runner can silently violate that.  These rules flag
every handler that could, unless the code either re-raises or guards
the broad handler with an explicit re-raising handler for the
protected exceptions (the sanctioned pattern)::

    try:
        ...
    except ExperimentTimeoutError:
        raise                      # budget decisions propagate
    except Exception as exc:       # now provably transient
        record(exc)
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.rules.base import (
    FileContext,
    Finding,
    Rule,
    exception_names,
    handler_reraises,
)

__all__ = [
    "BareExceptRule",
    "BroadExceptRule",
    "SwallowedWatchdogRule",
    "AtomicArtifactWriteRule",
]

_BROAD = frozenset({"Exception", "BaseException"})
#: Exceptions that must always propagate (watchdog/interrupt contract).
_PROTECTED = frozenset(
    {"ExperimentTimeoutError", "KeyboardInterrupt", "SystemExit"}
)


def _guarded(try_node: ast.Try, handler: ast.ExceptHandler) -> bool:
    """True when an earlier handler in the same try re-raises one of the
    protected exceptions, making a later broad handler safe."""
    for earlier in try_node.handlers:
        if earlier is handler:
            return False
        if set(exception_names(earlier.type)) & _PROTECTED and (
            handler_reraises(earlier)
        ):
            return True
    return False


class BareExceptRule(Rule):
    id = "ERR001"
    summary = "bare except:"
    rationale = (
        "a bare except catches BaseException — including the runner's "
        "watchdog timeout and KeyboardInterrupt — and hides the real "
        "failure.  Name the exception (narrowest class that works)."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield ctx.finding(
                    node,
                    self.id,
                    "bare 'except:' swallows watchdog timeouts and "
                    "KeyboardInterrupt; catch a named exception class",
                )


class BroadExceptRule(Rule):
    id = "ERR002"
    summary = "broad except Exception/BaseException without re-raise"
    rationale = (
        "except Exception swallows ExperimentTimeoutError (a budget "
        "decision, not a transient fault) and any ProtocolError the "
        "invariant checks raise.  Narrow the handler, re-raise, or put "
        "an 'except ExperimentTimeoutError: raise' guard before it."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Try):
                continue
            for handler in node.handlers:
                caught = set(exception_names(handler.type))
                if not caught & _BROAD:
                    continue
                if handler_reraises(handler) or _guarded(node, handler):
                    continue
                yield ctx.finding(
                    handler,
                    self.id,
                    f"broad 'except {', '.join(sorted(caught & _BROAD))}' "
                    f"can swallow ExperimentTimeoutError; narrow it, "
                    f"re-raise, or guard with "
                    f"'except ExperimentTimeoutError: raise' first",
                )


class SwallowedWatchdogRule(Rule):
    id = "ERR003"
    summary = "protected exception caught without re-raise"
    rationale = (
        "catching ExperimentTimeoutError / KeyboardInterrupt / "
        "SystemExit without re-raising breaks the watchdog contract: "
        "timeouts would be retried or recorded as ordinary failures."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            caught = set(exception_names(node.type)) & _PROTECTED
            if caught and not handler_reraises(node):
                yield ctx.finding(
                    node,
                    self.id,
                    f"{', '.join(sorted(caught))} caught without re-raise; "
                    f"the watchdog contract requires these to propagate",
                )


#: Identifier fragments marking a crash-consistency-critical artifact.
_ARTIFACT_TOKENS = ("checkpoint", "ckpt", "journal", "cache")
#: ``open`` modes that truncate the target before writing.
_TRUNCATING_MODES = frozenset({"w", "wb", "w+", "wb+", "w+b", "wt"})


class AtomicArtifactWriteRule(Rule):
    id = "ERR004"
    summary = "non-atomic write to a checkpoint/cache artifact"
    rationale = (
        "writing a checkpoint, journal, or cache file with open(path, "
        "'w') / Path.write_text truncates in place: a crash mid-write "
        "leaves a torn artifact the next run must distrust.  Route "
        "these writes through repro.parallel.journal.atomic_write_text "
        "(temp file + fsync + os.replace) or an append-only journal."
    )

    def _mentions_artifact(self, node: ast.AST) -> bool:
        try:
            text = ast.unparse(node).lower()
        except (ValueError, RecursionError):  # pragma: no cover - exotic AST
            return False
        return any(token in text for token in _ARTIFACT_TOKENS)

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id == "open" and node.args:
                mode = None
                if len(node.args) >= 2:
                    mode = node.args[1]
                for kw in node.keywords:
                    if kw.arg == "mode":
                        mode = kw.value
                if not (
                    isinstance(mode, ast.Constant)
                    and mode.value in _TRUNCATING_MODES
                ):
                    continue
                if self._mentions_artifact(node.args[0]):
                    yield ctx.finding(
                        node,
                        self.id,
                        "open(..., 'w') truncates a checkpoint/cache "
                        "artifact in place; use atomic_write_text (temp "
                        "file + fsync + os.replace) so a crash cannot "
                        "tear it",
                    )
            elif (
                isinstance(func, ast.Attribute)
                and func.attr in ("write_text", "write_bytes")
                and self._mentions_artifact(func.value)
            ):
                yield ctx.finding(
                    node,
                    self.id,
                    f"{func.attr}() rewrites a checkpoint/cache artifact "
                    f"in place; use atomic_write_text (temp file + fsync "
                    f"+ os.replace) so a crash cannot tear it",
                )
