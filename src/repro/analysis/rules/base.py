"""Rule plumbing shared by every simlint rule module.

A *file rule* (:class:`Rule`) sees one parsed module at a time; a
*project rule* (:class:`ProjectRule`) sees every parsed module in the
run at once and can therefore check cross-file contracts such as
"every concrete workload is exported from the package ``__all__``".

Rules yield :class:`Finding` objects; the engine owns suppression
(``# simlint: disable=RULE``), selection (``--select``/``--ignore``)
and ordering, so rule code stays a pure AST query.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterable, Iterator

__all__ = [
    "Finding",
    "FileContext",
    "Rule",
    "ProjectRule",
    "dotted_name",
    "exception_names",
    "handler_reraises",
    "SCOPED_DIRS",
]

#: Directories whose code runs inside (or feeds) the discrete-event
#: simulation.  DET rules only apply here: wall-clock reads and
#: unseeded randomness in, say, the experiment runner's watchdog are
#: legitimate, but inside these packages they would silently break the
#: bit-determinism contract every reproduced claim rests on.
SCOPED_DIRS = frozenset(
    {"sim", "htm", "workloads", "adversary", "faults", "distributions"}
)


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str


@dataclass
class FileContext:
    """A parsed module plus the metadata rules need.

    ``path`` is the display (repo-relative, posix) path; ``in_scope``
    says whether the file lives under a simulation-critical directory
    (see :data:`SCOPED_DIRS`).
    """

    path: str
    source: str
    tree: ast.Module
    in_scope: bool = False
    skip_file: bool = False
    #: line -> set of suppressed rule ids, or None meaning "all rules"
    suppressions: dict[int, set[str] | None] = field(default_factory=dict)
    #: line -> justification text after ``--`` in the pragma
    reasons: dict[int, str] = field(default_factory=dict)
    #: PRG001 findings for unknown/malformed pragmas (engine-produced)
    pragma_findings: list[Finding] = field(default_factory=list)

    def finding(self, node: ast.AST, rule: str, message: str) -> Finding:
        return Finding(
            self.path,
            getattr(node, "lineno", 1),
            getattr(node, "col_offset", 0) + 1,
            rule,
            message,
        )


class Rule:
    """A single-file AST rule."""

    id: str = ""
    summary: str = ""
    rationale: str = ""
    #: True -> only applied to files under :data:`SCOPED_DIRS`.
    scoped: bool = False

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.id}>"


class ProjectRule(Rule):
    """A rule that needs the whole parsed tree (cross-file contracts)."""

    def check(self, ctx: FileContext) -> Iterator[Finding]:  # pragma: no cover
        return iter(())

    def check_project(
        self, ctxs: Iterable[FileContext]
    ) -> Iterator[Finding]:
        raise NotImplementedError


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else None."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        if base is not None:
            return f"{base}.{node.attr}"
    return None


def exception_names(type_node: ast.AST | None) -> list[str]:
    """Last-component class names an ``except`` clause catches."""
    if type_node is None:
        return []
    nodes = type_node.elts if isinstance(type_node, ast.Tuple) else [type_node]
    names: list[str] = []
    for node in nodes:
        dotted = dotted_name(node)
        if dotted:
            names.append(dotted.rsplit(".", 1)[-1])
    return names


def handler_reraises(handler: ast.ExceptHandler) -> bool:
    """True when the handler body contains a bare ``raise`` (the caught
    exception keeps propagating, so nothing is swallowed)."""
    return any(
        isinstance(node, ast.Raise) and node.exc is None
        for node in ast.walk(handler)
    )
