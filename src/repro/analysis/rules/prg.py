"""PRG — pragma hygiene.

``# simlint: disable=...`` comments are part of the determinism
contract: each one is an audited exception.  A pragma naming a rule id
that does not exist (typo, or a rule renamed since) suppresses
nothing while *looking* like an audited exception — silently ignoring
it is how suppressions rot.  The engine parses pragmas itself, so the
finding is produced there; this descriptor gives the id a place in the
catalog and in ``--select``/``--ignore`` validation.
"""

from __future__ import annotations

from repro.analysis.rules.base import Rule

__all__ = ["PragmaHygieneRule"]


class PragmaHygieneRule(Rule):
    id = "PRG001"
    summary = "simlint pragma names an unknown rule id or is malformed"
    rationale = (
        "A ``# simlint: disable=DET01`` typo suppresses nothing but "
        "reads like an audited exception; a malformed pragma "
        "(``disable DET001`` without ``=``) used to silently disable "
        "every rule on the line.  Both now warn so the pragma ledger "
        "stays trustworthy."
    )

    def check(self, ctx):  # pragma: no cover - produced by the engine
        return iter(())
