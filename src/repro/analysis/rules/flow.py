"""FLOW — whole-program determinism rules (the ``--deep`` pass).

Unlike every other family, FLOW rules are not single-file AST queries:
they are produced by :mod:`repro.analysis.flow`, which builds a
project-wide call graph, infers per-function *effect signatures*, and
propagates them transitively to fixpoint.  A sim-critical entry point
that calls a wall-clock-reading helper three frames down — across
modules, through methods, decorators, callbacks, or the experiment
registry — passes the line-scoped DET rules but fails FLOW.

The descriptors here exist so the catalog (``--list-rules``),
``--select``/``--ignore`` validation, and pragma checking all know the
ids; the analysis itself lives in :mod:`repro.analysis.flow` and only
runs under ``repro lint --deep`` (or ``repro analyze``).
"""

from __future__ import annotations

from repro.analysis.rules.base import Rule

__all__ = ["FLOW_RULES", "FlowRuleInfo", "EFFECT_RULES"]


class FlowRuleInfo(Rule):
    """Catalog-only descriptor: FLOW findings come from the deep pass,
    never from :meth:`check`."""

    #: marks the rule as deep-analysis-only for the engine/selection.
    deep = True

    def check(self, ctx):  # pragma: no cover - descriptors never run
        return iter(())


class ReachesWallClock(FlowRuleInfo):
    id = "FLOW001"
    summary = "sim-critical entry point transitively reaches a wall-clock read"
    rationale = (
        "DET001 sees one line at a time; FLOW001 follows the call graph. "
        "An entry point in htm/, sim/, core/ (or a runner registered via "
        "register_experiment) that can reach time.time()/monotonic()/"
        "datetime.now() through any chain of calls makes rows depend on "
        "host speed.  The finding prints the full call chain to the "
        "offending read."
    )


class ReachesAmbientRng(FlowRuleInfo):
    id = "FLOW002"
    summary = "sim-critical entry point transitively reaches ambient randomness"
    rationale = (
        "Randomness that does not flow through repro.rngutil seeded "
        "streams — stdlib random, numpy's global singleton, an unseeded "
        "default_rng() — desynchronizes replay no matter how many frames "
        "down the call chain it hides."
    )


class ReachesUnorderedIteration(FlowRuleInfo):
    id = "FLOW003"
    summary = "sim-critical entry point transitively reaches unordered-set iteration"
    rationale = (
        "Iterating a hash-ordered set anywhere under a sim-critical entry "
        "point lets PYTHONHASHSEED pick the event order.  ORD001 covers "
        "the scoped dirs line-by-line; FLOW003 follows calls into helper "
        "modules the scoped rules never see."
    )


class ReachesGlobalMutation(FlowRuleInfo):
    id = "FLOW004"
    summary = "sim-critical entry point transitively mutates global state"
    rationale = (
        "A helper that writes a module-level global (or os.environ) makes "
        "an experiment's rows depend on what ran before it in the same "
        "process — replay order becomes part of the seed."
    )


class ReachesFilesystemWrite(FlowRuleInfo):
    id = "FLOW005"
    summary = "sim-critical entry point transitively writes the filesystem"
    rationale = (
        "Filesystem writes under a sim-critical entry point are hidden "
        "channels: they can feed later reads, collide across --jobs "
        "workers, and never replay.  Artifact I/O belongs in the runner "
        "and cache layers, behind atomic writes (ERR004)."
    )


class AmbientSeedProvenance(FlowRuleInfo):
    id = "FLOW006"
    summary = "Generator/SeedSequence in sim-critical code born from ambient state"
    rationale = (
        "Every RNG in sim-critical code must derive from an explicit "
        "parameter or rngutil.seedseq_for/stream_for/spawn_streams.  A "
        "generator built from entropy (unseeded default_rng/SeedSequence), "
        "from the wall clock or pid, or returned by a helper that does so, "
        "breaks seed-provenance — DET004 checks the signature shape, "
        "FLOW006 checks the actual dataflow."
    )


class RngAcrossWorkerBoundary(FlowRuleInfo):
    id = "FLOW007"
    summary = "RNG shared or captured across shard/worker boundaries"
    rationale = (
        "A module-level Generator, or a generator captured by a closure "
        "handed to a pool dispatch (starmap/map/submit), is drawn from in "
        "whatever order the workers interleave — rows stop being invariant "
        "to --jobs.  Workers must receive a seed/stream as an argument and "
        "derive their own generator (rngutil.seedseq_for)."
    )


#: Every FLOW rule, id-ordered (catalog + selection validation).
FLOW_RULES: tuple[FlowRuleInfo, ...] = (
    ReachesWallClock(),
    ReachesAmbientRng(),
    ReachesUnorderedIteration(),
    ReachesGlobalMutation(),
    ReachesFilesystemWrite(),
    AmbientSeedProvenance(),
    RngAcrossWorkerBoundary(),
)

#: effect-signature name -> purity rule id (FLOW001-005).
EFFECT_RULES: dict[str, str] = {
    "wall-clock": "FLOW001",
    "ambient-rng": "FLOW002",
    "unordered-iter": "FLOW003",
    "global-mutation": "FLOW004",
    "fs-write": "FLOW005",
}
