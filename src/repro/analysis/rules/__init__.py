"""simlint rule registry.

Rules are grouped by contract family:

========  ==========================================================
``DET``   determinism: no wall clock / unseeded randomness inside
          simulation-critical packages (all randomness flows through
          :mod:`repro.rngutil`)
``ORD``   ordering: no iteration/accumulation over unordered sets
``ERR``   error handling: the watchdog's ``ExperimentTimeoutError``
          and ``KeyboardInterrupt`` always propagate; checkpoint/cache
          artifacts are only written atomically
``API``   interface hygiene: no mutable defaults, no frozen-dataclass
          mutation outside construction
``POL``   project contracts: policy/workload/injector subclasses
          implement the protocol and are registered
``OBS``   observability: sim-critical code reports through the
          metrics registry / trace bus, never bare print or logging
``PRG``   pragma hygiene: suppressions must name real rules
``FLOW``  whole-program determinism (``--deep`` only): transitive
          effect reachability + RNG seed provenance over the project
          call graph (:mod:`repro.analysis.flow`)
========  ==========================================================

FLOW rules carry ``deep = True``: they appear in the catalog and in
selection validation, but findings only exist under ``repro lint
--deep`` — their ``check`` is a no-op.
"""

from __future__ import annotations

from repro.analysis.rules.api import FrozenMutationRule, MutableDefaultRule
from repro.analysis.rules.base import (
    Finding,
    FileContext,
    ProjectRule,
    Rule,
    SCOPED_DIRS,
)
from repro.analysis.rules.contracts import (
    InjectorHookRule,
    ProtocolMethodsRule,
    RegistrationRule,
    RegistryNameRule,
)
from repro.analysis.rules.det import (
    NumpySingletonRule,
    StdlibRandomRule,
    WallClockRule,
    WorkerSeedRule,
)
from repro.analysis.rules.errors import (
    AtomicArtifactWriteRule,
    BareExceptRule,
    BroadExceptRule,
    SwallowedWatchdogRule,
)
from repro.analysis.rules.flow import FLOW_RULES
from repro.analysis.rules.obs import PrintLoggingRule
from repro.analysis.rules.ordering import SetIterationRule, SetPopRule
from repro.analysis.rules.prg import PragmaHygieneRule

__all__ = [
    "Finding",
    "FileContext",
    "Rule",
    "ProjectRule",
    "SCOPED_DIRS",
    "ALL_RULES",
    "all_rule_ids",
    "resolve_selection",
]

#: Every registered rule, id-ordered.  Instantiated once — rules are
#: stateless AST queries.
ALL_RULES: tuple[Rule, ...] = (
    WallClockRule(),
    StdlibRandomRule(),
    NumpySingletonRule(),
    WorkerSeedRule(),
    SetIterationRule(),
    SetPopRule(),
    BareExceptRule(),
    BroadExceptRule(),
    SwallowedWatchdogRule(),
    AtomicArtifactWriteRule(),
    MutableDefaultRule(),
    FrozenMutationRule(),
    ProtocolMethodsRule(),
    RegistryNameRule(),
    RegistrationRule(),
    InjectorHookRule(),
    PrintLoggingRule(),
    PragmaHygieneRule(),
    *FLOW_RULES,
)


def all_rule_ids() -> list[str]:
    return [rule.id for rule in ALL_RULES]


def resolve_selection(
    select: list[str] | None = None, ignore: list[str] | None = None
) -> list[Rule]:
    """Rules matching ``select`` minus ``ignore``.

    Entries are full ids (``DET001``) or family prefixes (``DET``).
    Unknown entries raise ``ValueError`` — a typo'd ``--select`` must
    not silently lint nothing.
    """

    def matches(rule: Rule, entry: str) -> bool:
        return rule.id == entry or rule.id.startswith(entry)

    def validate(entries: list[str]) -> None:
        for entry in entries:
            if not any(matches(rule, entry) for rule in ALL_RULES):
                known = ", ".join(all_rule_ids())
                raise ValueError(
                    f"unknown rule {entry!r}; known rules: {known}"
                )

    chosen = list(ALL_RULES)
    if select:
        validate(select)
        chosen = [r for r in chosen if any(matches(r, e) for e in select)]
    if ignore:
        validate(ignore)
        chosen = [r for r in chosen if not any(matches(r, e) for e in ignore)]
    return chosen
