"""OBS — observability rules for simulation-critical code.

Since the unified observability layer (docs/OBSERVABILITY.md), the
sanctioned reporting channels inside the simulation tree are the
metrics registry, the trace bus, and raised exceptions.  ``print`` and
``logging`` calls in that code are one-off side channels: their output
interleaves nondeterministically across worker processes, corrupts
rendered reports on the serial path, and — unlike bus events — can
never be captured, diffed, or replayed.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.rules.base import (
    FileContext,
    Finding,
    Rule,
    dotted_name,
)

__all__ = ["PrintLoggingRule"]

#: Dotted-name parts that mark a call as stdlib-logging traffic
#: (``logging.info``, ``logger.warning``, ``self.logger.debug``, ...).
#: Exact-part matching keeps ``math.log`` and friends out of scope.
_LOG_PARTS = frozenset({"logging", "logger"})


class PrintLoggingRule(Rule):
    id = "OBS001"
    summary = "print/logging call inside simulation-critical code"
    rationale = (
        "sim-critical modules must report through the observability "
        "layer (a MetricsRegistry counter, a TraceBus event) or raise; "
        "print/logging output interleaves nondeterministically across "
        "worker processes and cannot be captured or replayed.  A "
        "deliberate debug aid can be suppressed with a justification."
    )
    scoped = True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] == "logging":
                        yield ctx.finding(
                            node,
                            self.id,
                            "import of 'logging': emit structured events "
                            "via repro.obs instead (docs/OBSERVABILITY.md)",
                        )
            elif isinstance(node, ast.ImportFrom):
                if (node.module or "").split(".")[0] == "logging":
                    yield ctx.finding(
                        node,
                        self.id,
                        "import from 'logging': emit structured events "
                        "via repro.obs instead (docs/OBSERVABILITY.md)",
                    )
            elif isinstance(node, ast.Call):
                dotted = dotted_name(node.func)
                if dotted is None:
                    continue
                if dotted == "print":
                    yield ctx.finding(
                        node,
                        self.id,
                        "print() in simulation-critical code; emit a "
                        "trace-bus event or metric instead "
                        "(docs/OBSERVABILITY.md)",
                    )
                elif _LOG_PARTS & set(dotted.split(".")):
                    yield ctx.finding(
                        node,
                        self.id,
                        f"logging call {dotted}() in simulation-critical "
                        f"code; emit a trace-bus event or metric instead "
                        f"(docs/OBSERVABILITY.md)",
                    )
