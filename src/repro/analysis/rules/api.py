"""API — interface-hygiene rules.

Mutable default arguments alias state across calls (a policy cache
default shared by every machine instance corrupts independence between
experiment cells); ``object.__setattr__`` outside construction mutates
frozen dataclasses that the rest of the code is entitled to treat as
value objects (hashable, safely shared across threads of the sweep).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.rules.base import (
    FileContext,
    Finding,
    Rule,
    dotted_name,
)

__all__ = ["MutableDefaultRule", "FrozenMutationRule"]

_MUTABLE_CALLS = frozenset(
    {"list", "dict", "set", "bytearray", "deque", "defaultdict", "Counter",
     "OrderedDict"}
)

#: Methods where object.__setattr__ on a frozen dataclass is sanctioned.
_CONSTRUCTION_METHODS = frozenset(
    {"__init__", "__post_init__", "__new__", "__setstate__"}
)


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                         ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        dotted = dotted_name(node.func)
        if dotted is not None and dotted.rsplit(".", 1)[-1] in _MUTABLE_CALLS:
            return True
    return False


class MutableDefaultRule(Rule):
    id = "API001"
    summary = "mutable default argument"
    rationale = (
        "a mutable default is evaluated once and shared by every call; "
        "state leaks across experiment cells and replays.  Default to "
        "None and construct inside the body."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if _is_mutable_default(default):
                    yield ctx.finding(
                        default,
                        self.id,
                        "mutable default argument is shared across calls; "
                        "use None and construct in the body",
                    )


class FrozenMutationRule(Rule):
    id = "API002"
    summary = "object.__setattr__ outside construction"
    rationale = (
        "frozen dataclasses (ConflictContext, FaultPlan, Event specs) "
        "are shared as immutable values; object.__setattr__ outside "
        "__init__/__post_init__ silently breaks that contract."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        visitor = _SetattrVisitor()
        visitor.visit(ctx.tree)
        for node in visitor.hits:
            yield ctx.finding(
                node,
                self.id,
                "object.__setattr__ outside __init__/__post_init__ "
                "mutates a frozen value object; construct a new "
                "instance instead (dataclasses.replace)",
            )


class _SetattrVisitor(ast.NodeVisitor):
    """Tracks whether the innermost enclosing function is a constructor."""

    def __init__(self) -> None:
        self.ctor_stack: list[bool] = [False]
        self.hits: list[ast.Call] = []

    def _visit_def(self, node: ast.AST) -> None:
        self.ctor_stack.append(node.name in _CONSTRUCTION_METHODS)
        self.generic_visit(node)
        self.ctor_stack.pop()

    visit_FunctionDef = _visit_def
    visit_AsyncFunctionDef = _visit_def

    def visit_Call(self, node: ast.Call) -> None:
        if (
            dotted_name(node.func) == "object.__setattr__"
            and not self.ctor_stack[-1]
        ):
            self.hits.append(node)
        self.generic_visit(node)
