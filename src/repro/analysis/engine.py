"""simlint engine: file discovery, parsing, suppression, rule dispatch.

The engine parses every target file once, runs the single-file rules,
then hands the whole parsed set to the project rules (cross-file
contracts).  Suppression is line-scoped and per-rule::

    deadline = time.monotonic() + t  # simlint: disable=DET001 -- watchdog

``# simlint: disable`` (no ``=``) suppresses every rule on that line;
``# simlint: skip-file`` near the top of a file excludes it entirely.
The text after ``--`` is the justification and is carried into the
JSON report, so suppressions stay auditable.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.rules import (
    ALL_RULES,
    FileContext,
    Finding,
    ProjectRule,
    Rule,
    SCOPED_DIRS,
    resolve_selection,
)

__all__ = ["LintResult", "SuppressedFinding", "lint_paths", "lint_sources"]

#: Rule id used for files that do not parse.  Not suppressible: a file
#: that cannot be parsed cannot be linted, which is itself a finding.
PARSE_ERROR_RULE = "E999"

_PRAGMA = re.compile(
    r"#\s*simlint:\s*(?P<kind>skip-file|disable)"
    r"(?:=(?P<rules>[A-Za-z]{1,4}\d{0,4}(?:\s*,\s*[A-Za-z]{1,4}\d{0,4})*))?"
    r"(?:\s*--\s*(?P<reason>.*))?"
)

#: ``skip-file`` must appear in the first N lines (prevents a stray
#: pragma deep in a file from silently excluding it).
_SKIP_FILE_WINDOW = 10


@dataclass(frozen=True, order=True)
class SuppressedFinding:
    finding: Finding
    reason: str = ""


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[SuppressedFinding] = field(default_factory=list)
    files_scanned: int = 0
    rules_run: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for f in self.findings:
            out[f.rule] = out.get(f.rule, 0) + 1
        return dict(sorted(out.items()))


def _parse_pragmas(
    source: str,
) -> tuple[bool, dict[int, set[str] | None], dict[int, str]]:
    """(skip_file, line -> suppressed rule ids (None = all), line -> reason)."""
    skip_file = False
    suppressions: dict[int, set[str] | None] = {}
    reasons: dict[int, str] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _PRAGMA.search(line)
        if match is None:
            continue
        if match.group("kind") == "skip-file":
            if lineno <= _SKIP_FILE_WINDOW:
                skip_file = True
            continue
        rules_text = match.group("rules")
        if rules_text:
            ids = {r.strip().upper() for r in rules_text.split(",")}
            existing = suppressions.get(lineno)
            suppressions[lineno] = (
                None if existing is None and lineno in suppressions
                else (existing or set()) | ids
            )
        else:
            suppressions[lineno] = None  # blanket disable
        reason = match.group("reason")
        if reason:
            reasons[lineno] = reason.strip()
    return skip_file, suppressions, reasons


def _in_scope(path: str) -> bool:
    parts = Path(path).parts
    return bool(SCOPED_DIRS.intersection(parts))


def _make_context(path: str, source: str) -> FileContext | Finding:
    """Parse one file; a syntax error becomes an E999 finding."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return Finding(
            path,
            exc.lineno or 1,
            (exc.offset or 0) + 1,
            PARSE_ERROR_RULE,
            f"file does not parse: {exc.msg}",
        )
    skip_file, suppressions, reasons = _parse_pragmas(source)
    return FileContext(
        path=path,
        source=source,
        tree=tree,
        in_scope=_in_scope(path),
        skip_file=skip_file,
        suppressions=suppressions,
        reasons=reasons,
    )


def _run_rules(
    ctxs: list[FileContext],
    rules: Sequence[Rule],
    pre_findings: list[Finding],
) -> LintResult:
    result = LintResult(
        findings=list(pre_findings),
        files_scanned=len(ctxs) + len(pre_findings),
        rules_run=[r.id for r in rules],
    )
    by_path = {ctx.path: ctx for ctx in ctxs}
    live = [ctx for ctx in ctxs if not ctx.skip_file]

    def route(finding: Finding) -> None:
        ctx = by_path.get(finding.path)
        if ctx is not None:
            if ctx.skip_file:
                return
            suppressed = ctx.suppressions.get(finding.line, "missing")
            if suppressed is None or (
                isinstance(suppressed, set) and finding.rule in suppressed
            ):
                result.suppressed.append(
                    SuppressedFinding(
                        finding, ctx.reasons.get(finding.line, "")
                    )
                )
                return
        result.findings.append(finding)

    for ctx in live:
        for rule in rules:
            if isinstance(rule, ProjectRule):
                continue
            if rule.scoped and not ctx.in_scope:
                continue
            for finding in rule.check(ctx):
                route(finding)
    for rule in rules:
        if isinstance(rule, ProjectRule):
            for finding in rule.check_project(live):
                route(finding)
    result.findings = sorted(set(result.findings))
    result.suppressed = sorted(set(result.suppressed))
    return result


def lint_sources(
    sources: dict[str, str],
    *,
    select: list[str] | None = None,
    ignore: list[str] | None = None,
) -> LintResult:
    """Lint in-memory sources (path -> text).  Test/fixture entry point;
    paths behave like repo-relative paths for scoping purposes."""
    rules = resolve_selection(select, ignore)
    ctxs: list[FileContext] = []
    errors: list[Finding] = []
    for path, source in sorted(sources.items()):
        made = _make_context(path, source)
        if isinstance(made, Finding):
            errors.append(made)
        else:
            ctxs.append(made)
    return _run_rules(ctxs, rules, errors)


def iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Every ``.py`` file under ``paths`` (files or directories),
    deterministic order, ``__pycache__``/hidden dirs skipped."""
    out: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            out.append(path)
        elif path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                parts = sub.relative_to(path).parts
                if any(
                    p == "__pycache__" or p.startswith(".") for p in parts
                ):
                    continue
                out.append(sub)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    # stable de-dup (a file passed twice, or a file inside a passed dir)
    seen: set[Path] = set()
    unique: list[Path] = []
    for path in out:
        resolved = path.resolve()
        if resolved not in seen:
            seen.add(resolved)
            unique.append(path)
    return unique


def _display_path(path: Path) -> str:
    try:
        rel = path.resolve().relative_to(Path.cwd().resolve())
        return rel.as_posix()
    except ValueError:
        return path.as_posix()


def lint_paths(
    paths: Sequence[str | Path],
    *,
    select: list[str] | None = None,
    ignore: list[str] | None = None,
) -> LintResult:
    """Lint files/directories on disk.  Raises ``FileNotFoundError``
    for a missing path and ``ValueError`` for an unknown rule id."""
    files = iter_python_files(paths)
    sources: dict[str, str] = {}
    for file in files:
        sources[_display_path(file)] = file.read_text(encoding="utf-8")
    return lint_sources(sources, select=select, ignore=ignore)
