"""simlint engine: file discovery, parsing, suppression, rule dispatch.

The engine parses every target file once, runs the single-file rules
(optionally fanned out over a :class:`repro.parallel.pool.ShardPool`),
then hands the whole parsed set to the project rules (cross-file
contracts).  Under ``deep=True`` it additionally runs the
whole-program pass (:mod:`repro.analysis.flow`): call-graph purity
inference and seed-provenance tracking, with findings filtered
through the committed baseline.

Suppression is line-scoped and per-rule::

    deadline = time.monotonic() + t  # simlint: disable=DET001 -- watchdog

``# simlint: disable`` (no ``=``) suppresses every rule on that line;
``# simlint: disable=DET001,ORD001`` suppresses several; spaces
around ``=`` and the commas are tolerated.  ``# simlint: skip-file``
near the top of a file excludes it entirely.  The text after ``--`` is
the justification and is carried into the JSON report, so
suppressions stay auditable.  A pragma naming an unknown rule id, or
one that does not parse, is itself a finding (``PRG001``) — silently
inert suppressions are how pragma ledgers rot.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.analysis.rules import (
    ALL_RULES,
    FileContext,
    Finding,
    ProjectRule,
    Rule,
    SCOPED_DIRS,
    resolve_selection,
)

__all__ = ["LintResult", "SuppressedFinding", "lint_paths", "lint_sources"]

#: Rule id used for files that do not parse.  Not suppressible: a file
#: that cannot be parsed cannot be linted, which is itself a finding.
PARSE_ERROR_RULE = "E999"

#: Pragma hygiene findings (unknown/malformed ids) carry this rule id.
PRAGMA_RULE = "PRG001"

_PRAGMA = re.compile(
    r"#\s*simlint:\s*(?P<kind>skip-file|disable)(?P<tail>[^\r\n]*)"
)
_RULE_ID = re.compile(r"^[A-Za-z]{1,4}\d{0,4}$")

#: ``skip-file`` must appear in the first N lines (prevents a stray
#: pragma deep in a file from silently excluding it).
_SKIP_FILE_WINDOW = 10


@dataclass(frozen=True, order=True)
class SuppressedFinding:
    finding: Finding
    reason: str = ""


@dataclass
class LintResult:
    """Outcome of one lint run."""

    findings: list[Finding] = field(default_factory=list)
    suppressed: list[SuppressedFinding] = field(default_factory=list)
    files_scanned: int = 0
    rules_run: list[str] = field(default_factory=list)
    #: raw deep-pass findings that survived baseline + suppression
    #: (dicts with entry/chain/site detail; see repro.analysis.flow).
    flow: list[dict] = field(default_factory=list)
    #: deep findings accepted by the baseline, with justifications.
    baselined: list[dict] = field(default_factory=list)
    #: analysis-cache statistics (file_hits/file_misses/run_hit).
    analysis_stats: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.findings

    def counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for f in self.findings:
            out[f.rule] = out.get(f.rule, 0) + 1
        return dict(sorted(out.items()))


def _known_rule_ids() -> set[str]:
    return {rule.id for rule in ALL_RULES} | {PARSE_ERROR_RULE, PRAGMA_RULE}


def _parse_disable_tail(
    tail: str,
) -> tuple[set[str] | None, str, list[str]]:
    """``(suppressed ids | None for blanket, reason, problems)`` for the
    text after ``disable`` in a pragma."""
    rules_part, _sep, reason = tail.partition("--")
    rules_part = rules_part.strip()
    reason = reason.strip()
    if not rules_part:
        return None, reason, []  # blanket disable
    if not rules_part.startswith("="):
        return (
            set(),
            reason,
            [
                "malformed pragma: expected '=RULE[,RULE...]' after "
                f"'disable', got {rules_part!r}"
            ],
        )
    ids: set[str] = set()
    problems: list[str] = []
    known = _known_rule_ids()
    for token in rules_part[1:].split(","):
        token = token.strip()
        if not token:
            problems.append("malformed pragma: empty rule id in disable list")
            continue
        upper = token.upper()
        if not _RULE_ID.match(upper):
            problems.append(
                f"malformed pragma: {token!r} is not a rule id"
            )
            continue
        if upper not in known:
            problems.append(
                f"pragma disables unknown rule {upper!r} (typo?); it has "
                f"no effect"
            )
        ids.add(upper)
    return ids, reason, problems


def _comment_lines(source: str) -> list[tuple[int, str]]:
    """(line, comment text) for every real ``#`` comment.  Tokenizing
    keeps pragma text inside docstrings/strings from being treated as
    a pragma; on a tokenization error fall back to whole lines (the
    old behavior) rather than losing suppressions."""
    try:
        return [
            (tok.start[0], tok.string)
            for tok in tokenize.generate_tokens(io.StringIO(source).readline)
            if tok.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, IndentationError):
        return list(enumerate(source.splitlines(), start=1))


def _parse_pragmas_full(
    source: str,
) -> tuple[
    bool, dict[int, set[str] | None], dict[int, str], list[tuple[int, str]]
]:
    """(skip_file, line -> suppressed ids (None = all), line -> reason,
    [(line, pragma problem)])."""
    skip_file = False
    suppressions: dict[int, set[str] | None] = {}
    reasons: dict[int, str] = {}
    problems: list[tuple[int, str]] = []
    for lineno, line in _comment_lines(source):
        match = _PRAGMA.search(line)
        if match is None:
            continue
        if match.group("kind") == "skip-file":
            if lineno <= _SKIP_FILE_WINDOW:
                skip_file = True
            continue
        ids, reason, line_problems = _parse_disable_tail(match.group("tail"))
        problems.extend((lineno, msg) for msg in line_problems)
        if ids is None:
            suppressions[lineno] = None  # blanket disable
        elif suppressions.get(lineno, set()) is not None:
            suppressions[lineno] = (suppressions.get(lineno) or set()) | ids
        if reason:
            reasons[lineno] = reason
    return skip_file, suppressions, reasons, problems


def _parse_pragmas(
    source: str,
) -> tuple[bool, dict[int, set[str] | None], dict[int, str]]:
    """(skip_file, suppressions, reasons) — problem-free view, used by
    the deep pass's extractor to honor site-level suppressions."""
    skip_file, suppressions, reasons, _problems = _parse_pragmas_full(source)
    return skip_file, suppressions, reasons


def _in_scope(path: str) -> bool:
    parts = Path(path).parts
    return bool(SCOPED_DIRS.intersection(parts))


def _make_context(path: str, source: str) -> FileContext | Finding:
    """Parse one file; a syntax error becomes an E999 finding."""
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return Finding(
            path,
            exc.lineno or 1,
            (exc.offset or 0) + 1,
            PARSE_ERROR_RULE,
            f"file does not parse: {exc.msg}",
        )
    skip_file, suppressions, reasons, problems = _parse_pragmas_full(source)
    return FileContext(
        path=path,
        source=source,
        tree=tree,
        in_scope=_in_scope(path),
        skip_file=skip_file,
        suppressions=suppressions,
        reasons=reasons,
        pragma_findings=[
            Finding(path, line, 1, PRAGMA_RULE, message)
            for line, message in problems
        ],
    )


def _is_deep(rule: Rule) -> bool:
    return bool(getattr(rule, "deep", False))


def _file_rule_task(
    path: str, source: str, rule_ids: Sequence[str]
) -> list[Finding]:
    """Pool task: run the selected single-file rules over one source.

    Re-parses in the worker (sources are strings, contexts are not
    picklable) and returns *unrouted* findings — the parent owns
    suppression, so pragma handling stays in one place.
    """
    made = _make_context(path, source)
    if isinstance(made, Finding) or made.skip_file:
        return []
    wanted = set(rule_ids)
    out: list[Finding] = []
    for rule in ALL_RULES:
        if rule.id not in wanted or isinstance(rule, ProjectRule):
            continue
        if rule.scoped and not made.in_scope:
            continue
        out.extend(rule.check(made))
    return out


def _run_rules(
    ctxs: list[FileContext],
    rules: Sequence[Rule],
    pre_findings: list[Finding],
    *,
    deep_findings: Sequence[Finding] = (),
    pool=None,
) -> LintResult:
    exec_rules = [r for r in rules if not _is_deep(r)]
    result = LintResult(
        findings=list(pre_findings),
        files_scanned=len(ctxs) + len(pre_findings),
        rules_run=[r.id for r in rules],
    )
    by_path = {ctx.path: ctx for ctx in ctxs}
    live = [ctx for ctx in ctxs if not ctx.skip_file]

    def route(finding: Finding) -> None:
        ctx = by_path.get(finding.path)
        if ctx is not None:
            if ctx.skip_file:
                return
            suppressed = ctx.suppressions.get(finding.line, "missing")
            if suppressed is None or (
                isinstance(suppressed, set) and finding.rule in suppressed
            ):
                result.suppressed.append(
                    SuppressedFinding(
                        finding, ctx.reasons.get(finding.line, "")
                    )
                )
                return
        result.findings.append(finding)

    file_rules = [r for r in exec_rules if not isinstance(r, ProjectRule)]
    if pool is not None and getattr(pool, "jobs", 1) > 1 and len(live) > 1:
        rule_ids = [r.id for r in file_rules]
        raw_lists = pool.starmap(
            _file_rule_task,
            [(ctx.path, ctx.source, rule_ids) for ctx in live],
        )
        for raw in raw_lists:
            for finding in raw:
                route(finding)
    else:
        for ctx in live:
            for rule in file_rules:
                if rule.scoped and not ctx.in_scope:
                    continue
                for finding in rule.check(ctx):
                    route(finding)
    if any(r.id == PRAGMA_RULE for r in rules):
        for ctx in live:
            for finding in ctx.pragma_findings:
                route(finding)
    for rule in exec_rules:
        if isinstance(rule, ProjectRule):
            for finding in rule.check_project(live):
                route(finding)
    for finding in deep_findings:
        route(finding)
    result.findings = sorted(set(result.findings))
    result.suppressed = sorted(set(result.suppressed))
    return result


def lint_sources(
    sources: dict[str, str],
    *,
    select: list[str] | None = None,
    ignore: list[str] | None = None,
    deep: bool = False,
    pool=None,
    cache_dir: str | Path | None = None,
    baseline_entries: list[dict] | None = None,
) -> LintResult:
    """Lint in-memory sources (path -> text).  Test/fixture entry point;
    paths behave like repo-relative paths for scoping purposes.

    ``deep=True`` additionally runs the whole-program FLOW pass.
    ``pool`` (a ShardPool) parallelizes per-file rules and deep
    extraction; findings are sorted, so output is identical at any
    ``--jobs``.  ``cache_dir`` enables the content-addressed analysis
    cache; ``baseline_entries`` (see :mod:`repro.analysis.baseline`)
    accept known deep findings with justifications.
    """
    rules = resolve_selection(select, ignore)
    ctxs: list[FileContext] = []
    errors: list[Finding] = []
    for path, source in sorted(sources.items()):
        made = _make_context(path, source)
        if isinstance(made, Finding):
            errors.append(made)
        else:
            ctxs.append(made)

    deep_findings: list[Finding] = []
    flow_kept: list[dict] = []
    baselined: list[dict] = []
    stats: dict = {}
    if deep:
        from repro.analysis.baseline import apply_baseline
        from repro.analysis.flow import analyze_sources

        raw, stats = analyze_sources(
            {ctx.path: ctx.source for ctx in ctxs},
            cache_dir=cache_dir,
            pool=pool,
        )
        selected = {r.id for r in rules}
        raw = [f for f in raw if f["rule"] in selected]
        flow_kept, baselined = apply_baseline(raw, baseline_entries or [])
        deep_findings = [
            Finding(f["path"], f["line"], 1, f["rule"], f["message"])
            for f in flow_kept
        ]

    result = _run_rules(
        ctxs, rules, errors, deep_findings=deep_findings, pool=pool
    )
    if deep:
        final = set(result.findings)
        result.flow = [
            f
            for f in flow_kept
            if Finding(f["path"], f["line"], 1, f["rule"], f["message"])
            in final
        ]
        result.baselined = baselined
        result.analysis_stats = stats
    return result


def iter_python_files(paths: Iterable[str | Path]) -> list[Path]:
    """Every ``.py`` file under ``paths`` (files or directories),
    deterministic order, ``__pycache__``/hidden dirs skipped."""
    out: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            out.append(path)
        elif path.is_dir():
            for sub in sorted(path.rglob("*.py")):
                parts = sub.relative_to(path).parts
                if any(
                    p == "__pycache__" or p.startswith(".") for p in parts
                ):
                    continue
                out.append(sub)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    # stable de-dup (a file passed twice, or a file inside a passed dir)
    seen: set[Path] = set()
    unique: list[Path] = []
    for path in out:
        resolved = path.resolve()
        if resolved not in seen:
            seen.add(resolved)
            unique.append(path)
    return unique


def _display_path(path: Path) -> str:
    try:
        rel = path.resolve().relative_to(Path.cwd().resolve())
        return rel.as_posix()
    except ValueError:
        return path.as_posix()


def lint_paths(
    paths: Sequence[str | Path],
    *,
    select: list[str] | None = None,
    ignore: list[str] | None = None,
    deep: bool = False,
    pool=None,
    cache_dir: str | Path | None = None,
    baseline_entries: list[dict] | None = None,
) -> LintResult:
    """Lint files/directories on disk.  Raises ``FileNotFoundError``
    for a missing path and ``ValueError`` for an unknown rule id."""
    files = iter_python_files(paths)
    sources: dict[str, str] = {}
    for file in files:
        sources[_display_path(file)] = file.read_text(encoding="utf-8")
    return lint_sources(
        sources,
        select=select,
        ignore=ignore,
        deep=deep,
        pool=pool,
        cache_dir=cache_dir,
        baseline_entries=baseline_entries,
    )
