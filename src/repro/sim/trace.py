"""Structured event tracing for simulations.

A :class:`Tracer` is a bounded, filterable record of simulation events
— conflict decisions, aborts, commits, probe deliveries — that the HTM
machine emits when a tracer is attached.  It exists for debuggability:
the wedge self-deadlock documented in DESIGN.md §5b.2 was found by
staring at exactly this kind of timeline.

Since the observability layer landed, the tracer shares one event
schema with the process-wide trace bus: :class:`TraceEvent` *is*
:class:`repro.obs.tracebus.ObsEvent`, and a :class:`Tracer` doubles as
a bus **sink** (it has ``record(event)``), so the same ring buffer can
be fed by ``machine.tracer = tracer`` or by
``bus.subscribe(tracer)`` — one vocabulary, two delivery paths
(docs/OBSERVABILITY.md).

Usage::

    tracer = Tracer(capacity=10_000)
    machine = Machine(params, policy_factory)
    machine.tracer = tracer
    ...
    print(tracer.render(kinds={"abort", "grace"}))
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Iterable

from repro.errors import InvalidParameterError
from repro.obs.tracebus import ObsEvent as TraceEvent

__all__ = ["TraceEvent", "Tracer", "NullTracer"]


class Tracer:
    """Bounded ring buffer of :class:`TraceEvent`.

    ``kinds`` (optional) restricts recording to a set of event kinds;
    everything else is dropped at record time (cheap — one set lookup).
    """

    def __init__(
        self, capacity: int = 100_000, kinds: Iterable[str] | None = None
    ) -> None:
        if capacity < 1:
            raise InvalidParameterError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.kinds = set(kinds) if kinds is not None else None
        self._events: deque[TraceEvent] = deque(maxlen=capacity)
        self.emitted = 0
        self.dropped_by_filter = 0

    # -- emission ---------------------------------------------------------
    def emit(self, time: float, kind: str, core: int, **detail) -> None:
        self.record(TraceEvent(time, kind, core, detail))

    def record(self, event: TraceEvent) -> None:
        """Bus-sink entry point: filter, then buffer."""
        if self.kinds is not None and event.kind not in self.kinds:
            self.dropped_by_filter += 1
            return
        self._events.append(event)
        self.emitted += 1

    @property
    def enabled(self) -> bool:
        return True

    # -- queries ------------------------------------------------------------
    def events(
        self,
        *,
        kinds: Iterable[str] | None = None,
        core: int | None = None,
        since: float = 0.0,
    ) -> list[TraceEvent]:
        wanted = set(kinds) if kinds is not None else None
        return [
            e
            for e in self._events
            if (wanted is None or e.kind in wanted)
            and (core is None or e.core == core)
            and e.time >= since
        ]

    def counts(self) -> dict[str, int]:
        """Events per kind currently buffered."""
        return dict(Counter(e.kind for e in self._events))

    def render(self, **query) -> str:
        """Formatted timeline of the matching events."""
        lines = [e.format() for e in self.events(**query)]
        return "\n".join(lines) if lines else "(no matching events)"

    def clear(self) -> None:
        self._events.clear()

    def __len__(self) -> int:
        return len(self._events)


class NullTracer:
    """No-op stand-in used when no tracer is attached (zero overhead:
    the machine checks ``enabled`` before formatting details)."""

    enabled = False

    def emit(self, time: float, kind: str, core: int, **detail) -> None:
        """Drop everything."""

    def record(self, event: TraceEvent) -> None:
        """Drop everything."""

    def events(self, **query) -> list:
        return []

    def counts(self) -> dict[str, int]:
        return {}

    def __len__(self) -> int:
        return 0
