"""Batched struct-of-arrays Monte-Carlo engine for simulated trials.

The Corollary 2 progress experiments and the backoff ablations drive
thousands of *independent* transactions through
:meth:`~repro.adversary.arena.TimedArena.run_transaction` — a scalar
Python loop per trial.  This module executes the same trials as a
struct-of-arrays (SoA) program: one :class:`TrialProgram` describes the
adversary's per-attempt conflict plan and the backoff parameters, and
:func:`run_trials` advances *all* trials in lockstep attempt rounds —
delay draws as one vectorized quantile transform per conflict slot,
abort/commit resolution as boolean masks, Corollary 2 B-growth as a
masked in-place update on a ``B`` vector, attempts/time/waiter-delay
counters as vector accumulations.

Byte-identity contract
----------------------

The batched engine is *bit-identical* to the scalar golden reference
(``engine="scalar"``, which literally runs ``TimedArena.run_transaction``
with a :class:`~repro.core.backoff.BackoffPolicy`), because both engines
consume uniforms from the same positional **round-major draw layout**:

* Trials are split into ``n_shards`` contiguous shards; shard ``s``
  draws from the ``s``-th :class:`~numpy.random.SeedSequence` child of
  the root sequence, so the stream tree depends only on
  ``(seed, path, n_shards)`` — never on ``--jobs`` or batch internals.
* Within a shard of ``n`` trials facing ``m`` conflict slots per
  attempt, uniforms are generated lazily in round-major blocks:
  block ``r`` is ``gen.random((m, n))``, and ``block[r][c, j]`` is the
  uniform trial ``j`` uses at conflict slot ``c`` of attempt ``r + 1``
  — whether or not the trial consumes it (committed, already-aborted,
  or exhausted trials simply leave their draws unused).

Because a draw's position depends only on ``(r, c, j)`` and not on any
other trial's history, the scalar reference (replayed over the same
blocks) and the lockstep batched program see identical uniforms, and
every derived quantity is computed with the same IEEE-754 operation
order (``delay = u * (B/(k-1))``; ``B = min(B*factor + increment,
max_B)``; per-trial left-fold accumulation).  The hypothesis suite in
``tests/test_mc_engine.py`` pins ``batch == scalar`` exactly — the same
kernels-vs-reference pattern as ``tests/test_kernels_equiv.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.adversary.arena import AttemptRecord, TimedArena
from repro.core.backoff import BackoffPolicy
from repro.core.requestor_wins import UniformRW
from repro.errors import InvalidParameterError, SimulationError
from repro.rngutil import seedseq_for

__all__ = [
    "TrialProgram",
    "TrialResults",
    "run_trials",
    "DEFAULT_SHARDS",
    "split_trials",
]

#: Default shard count.  Like the fig2 grids, the shard count is part of
#: a result's identity: ``--jobs`` only changes how many shards execute
#: concurrently, never which streams exist.
DEFAULT_SHARDS = 8

_ENGINES = ("batch", "scalar")


@dataclass(frozen=True)
class TrialProgram:
    """One transaction's adversary plan + backoff parameters, applied to
    every trial in a batch.

    ``conflicts`` is the per-attempt plan as ``(remaining, k)`` pairs
    with ``0 < remaining <= rho``; it is normalized to chronological
    order (decreasing remaining) exactly as
    :meth:`TimedArena.run_transaction` strikes them.  ``k`` is the chain
    size the uniform delay policy assumes (the experiment-level ``k``
    that parameterizes ``UniformRW(B, k)``).
    """

    rho: float
    conflicts: tuple[tuple[float, int], ...]
    k: int = 2
    B0: float = 64.0
    factor: float = 2.0
    increment: float = 0.0
    max_B: float = math.inf
    max_attempts: int = 10_000

    def __post_init__(self) -> None:
        if self.rho <= 0:
            raise InvalidParameterError(f"rho must be positive, got {self.rho}")
        normalized = []
        for remaining, k_c in self.conflicts:
            if not 0.0 < remaining <= self.rho:
                raise SimulationError(
                    f"conflict remaining {remaining} outside (0, {self.rho}]"
                )
            if k_c < 2:
                raise SimulationError(f"chain size {k_c} < 2")
            normalized.append((float(remaining), int(k_c)))
        if self.k < 2:
            raise InvalidParameterError(f"policy k must be >= 2, got {self.k}")
        if self.B0 <= 0 or not math.isfinite(self.B0):
            raise InvalidParameterError(
                f"B0 must be finite and positive, got {self.B0}"
            )
        if self.factor < 1.0:
            raise InvalidParameterError(f"factor must be >= 1, got {self.factor}")
        if self.increment < 0.0:
            raise InvalidParameterError(
                f"increment must be >= 0, got {self.increment}"
            )
        if self.factor == 1.0 and self.increment == 0.0:
            raise InvalidParameterError(
                "backoff needs factor > 1 or increment > 0"
            )
        if self.max_attempts < 1:
            raise InvalidParameterError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        # chronological strike order, identical to run_transaction's sort
        normalized.sort(key=lambda rk: -rk[0])
        object.__setattr__(self, "conflicts", tuple(normalized))


@dataclass
class TrialResults:
    """Struct-of-arrays outcome of a batch of trials (one row per trial,
    fields mirroring :class:`~repro.adversary.arena.AttemptRecord`)."""

    attempts: np.ndarray = field(default_factory=lambda: np.zeros(0, np.int64))
    total_time: np.ndarray = field(default_factory=lambda: np.zeros(0))
    committed: np.ndarray = field(default_factory=lambda: np.zeros(0, bool))
    waiter_delay: np.ndarray = field(default_factory=lambda: np.zeros(0))
    final_B: np.ndarray = field(default_factory=lambda: np.zeros(0))

    def __len__(self) -> int:
        return self.attempts.shape[0]

    @classmethod
    def empty(cls, n: int) -> "TrialResults":
        return cls(
            attempts=np.zeros(n, dtype=np.int64),
            total_time=np.zeros(n, dtype=float),
            committed=np.zeros(n, dtype=bool),
            waiter_delay=np.zeros(n, dtype=float),
            final_B=np.zeros(n, dtype=float),
        )

    @classmethod
    def concat(cls, parts: Sequence["TrialResults"]) -> "TrialResults":
        return cls(
            attempts=np.concatenate([p.attempts for p in parts]),
            total_time=np.concatenate([p.total_time for p in parts]),
            committed=np.concatenate([p.committed for p in parts]),
            waiter_delay=np.concatenate([p.waiter_delay for p in parts]),
            final_B=np.concatenate([p.final_B for p in parts]),
        )

    def records(self) -> list[AttemptRecord]:
        """Expand back to per-trial :class:`AttemptRecord` rows."""
        return [
            AttemptRecord(
                attempts=int(self.attempts[j]),
                total_time=float(self.total_time[j]),
                committed=bool(self.committed[j]),
                waiter_delay=float(self.waiter_delay[j]),
                final_B=float(self.final_B[j]),
            )
            for j in range(len(self))
        ]

    def equals(self, other: "TrialResults") -> bool:
        """Exact (bitwise) equality, the contract the tests pin."""
        return (
            np.array_equal(self.attempts, other.attempts)
            and np.array_equal(self.total_time, other.total_time)
            and np.array_equal(self.committed, other.committed)
            and np.array_equal(self.waiter_delay, other.waiter_delay)
            and np.array_equal(self.final_B, other.final_B, equal_nan=True)
        )


class _DrawBlocks:
    """Lazily-materialized round-major uniforms for one shard.

    ``round(r)`` is the ``(m, n)`` block of attempt ``r + 1``: row ``c``
    holds the slot-``c`` uniforms of every trial.  Blocks are generated
    on demand in round order from a single shard generator, so the
    layout depends only on the stream — not on which trials are still
    alive or how they are batched.
    """

    __slots__ = ("_gen", "_m", "_n", "_blocks")

    def __init__(self, gen: np.random.Generator, m: int, n: int) -> None:
        self._gen = gen
        self._m = m
        self._n = n
        self._blocks: list[np.ndarray] = []

    def round(self, r: int) -> np.ndarray:
        while len(self._blocks) <= r:
            self._blocks.append(self._gen.random((self._m, self._n)))
        return self._blocks[r]


class _CachedUniformRW:
    """Memoized ``B -> UniformRW(B, k)`` factory.

    ``UniformRW`` is stateless, so one instance per distinct ``B`` can
    be shared by every trial in a shard and by every ``BackoffPolicy``
    rebuild on abort — this is the hoist that stops the scalar loops
    from reconstructing the distribution 300-400x per row.
    """

    __slots__ = ("k", "_cache")

    def __init__(self, k: int) -> None:
        self.k = k
        self._cache: dict[float, UniformRW] = {}

    def __call__(self, B: float) -> UniformRW:
        pol = self._cache.get(B)
        if pol is None:
            pol = UniformRW(B, self.k)
            self._cache[B] = pol
        return pol


class _ReplayBackoff(BackoffPolicy):
    """A real ``BackoffPolicy`` whose uniforms come from the shard's
    round-major draw blocks instead of a live generator.

    ``sample`` reads ``blocks.round(r)[c, j]`` for this trial's column
    ``j`` and advances the slot cursor; ``record_abort`` advances the
    round cursor (attempts only ever advance through ``record_abort``,
    so the cursors track ``run_transaction`` exactly).  Everything else
    — B growth, inner-policy rebuild, ``current_B`` — is the stock
    ``BackoffPolicy`` state machine, which is what makes this path the
    golden *scalar* reference rather than a reimplementation.
    """

    def __init__(
        self,
        factory: _CachedUniformRW,
        program: TrialProgram,
        blocks: _DrawBlocks,
        column: int,
    ) -> None:
        super().__init__(
            factory,
            program.B0,
            factor=program.factor,
            increment=program.increment,
            max_B=program.max_B,
        )
        self._blocks = blocks
        self._col = column
        self._round = 0
        self._slot = 0

    def sample(self, rng: np.random.Generator | int | None = None) -> float:
        u = self._blocks.round(self._round)[self._slot, self._col]
        self._slot += 1
        return float(self._inner.ppf(u))

    def record_abort(self) -> None:
        super().record_abort()
        self._round += 1
        self._slot = 0


def split_trials(n_trials: int, n_shards: int) -> list[int]:
    """Contiguous even split: the first ``n_trials % n_shards`` shards
    take one extra trial (``np.array_split`` semantics)."""
    base, extra = divmod(n_trials, n_shards)
    return [base + (1 if s < extra else 0) for s in range(n_shards)]


def _spawn_children(
    root: np.random.SeedSequence, n: int
) -> list[np.random.SeedSequence]:
    """``root.spawn(n)`` without mutating ``root``.

    ``SeedSequence.spawn`` advances an internal child counter, so a
    caller-supplied sequence would yield *different* streams on every
    call.  Building the children positionally keeps :func:`run_trials`
    pure: for a fresh sequence the result is identical to ``spawn(n)``.
    """
    return [
        np.random.SeedSequence(
            entropy=root.entropy,
            spawn_key=tuple(root.spawn_key) + (i,),
            pool_size=root.pool_size,
        )
        for i in range(n)
    ]


def _replay_scalar(
    program: TrialProgram, n: int, blocks: _DrawBlocks
) -> TrialResults:
    """Golden reference: drive each trial through the *real*
    ``TimedArena.run_transaction`` + ``BackoffPolicy``, replaying the
    shard's draw layout."""
    arena = TimedArena(max_attempts=program.max_attempts)
    factory = _CachedUniformRW(program.k)
    conflicts = list(program.conflicts)
    out = TrialResults.empty(n)
    for j in range(n):
        policy = _ReplayBackoff(factory, program, blocks, j)
        rec = arena.run_transaction(program.rho, conflicts, policy, rng=0)
        out.attempts[j] = rec.attempts
        out.total_time[j] = rec.total_time
        out.committed[j] = rec.committed
        out.waiter_delay[j] = rec.waiter_delay
        out.final_B[j] = rec.final_B
    return out


def _replay_batch(
    program: TrialProgram, n: int, blocks: _DrawBlocks
) -> TrialResults:
    """SoA lockstep execution over the same draw layout.

    Every array op below replicates the scalar path's IEEE-754
    operation order exactly (see the ``tests/test_mc_engine.py``
    equivalence suite): ``delay = u * (B/(k-1))``; abort time
    ``(rho - remaining) + delay`` added in one expression; ``B`` growth
    ``min(B*factor + increment, max_B)`` after every aborted attempt.
    """
    out = TrialResults.empty(n)
    kp = program.k
    B = np.full(n, program.B0, dtype=float)
    active = np.ones(n, dtype=bool)
    idx = np.arange(n)
    r = 0
    while r < program.max_attempts and active.any():
        draws = blocks.round(r)
        running = active.copy()  # still un-aborted within this attempt
        for c, (remaining, k_c) in enumerate(program.conflicts):
            live = idx[running]
            if live.size == 0:
                break
            delay = draws[c, live] * (B[live] / (kp - 1))
            survived = remaining <= delay
            surv = live[survived]
            abrt = live[~survived]
            # survivors: k-1 waiters stall for the receiver's remaining run
            out.waiter_delay[surv] += (k_c - 1) * remaining
            # aborters: wasted progress + grace period, waiters stall for
            # the grace period
            out.total_time[abrt] += (program.rho - remaining) + delay[~survived]
            out.waiter_delay[abrt] += (k_c - 1) * delay[~survived]
            running[abrt] = False
        committed_now = idx[running]
        if committed_now.size:
            out.total_time[committed_now] += program.rho
            out.attempts[committed_now] = r + 1
            out.committed[committed_now] = True
            active[committed_now] = False
        # every still-active trial aborted this attempt: grow its B
        if active.any():
            B[active] = np.minimum(
                B[active] * program.factor + program.increment, program.max_B
            )
        r += 1
    # exhausted trials: attempts pegged at the cap, B already grown after
    # the final abort (matching the scalar loop's fall-through)
    out.attempts[active] = program.max_attempts
    # record_commit resets a committed trial's policy to B0
    out.final_B = np.where(out.committed, program.B0, B)
    return out


def _trial_shard(
    program: TrialProgram,
    n_rows: int,
    shard_seed: np.random.SeedSequence,
    engine: str,
) -> TrialResults:
    """Execute one shard's trials (module-level so pools can pickle it)."""
    if n_rows == 0:
        return TrialResults.empty(0)
    gen = np.random.default_rng(shard_seed)
    blocks = _DrawBlocks(gen, len(program.conflicts), n_rows)
    if engine == "scalar":
        return _replay_scalar(program, n_rows, blocks)
    return _replay_batch(program, n_rows, blocks)


def run_trials(
    program: TrialProgram,
    n_trials: int,
    *,
    seed: int | np.random.SeedSequence | None = None,
    path: tuple[int | str, ...] = (),
    engine: str = "batch",
    n_shards: int = DEFAULT_SHARDS,
    pool=None,
) -> TrialResults:
    """Run ``n_trials`` independent executions of ``program``.

    Parameters
    ----------
    seed / path:
        Either an integer seed plus a :func:`~repro.rngutil.seedseq_for`
        path, or a ready-made ``SeedSequence`` (``path`` ignored).
    engine:
        ``"batch"`` (SoA lockstep) or ``"scalar"`` (golden reference via
        ``TimedArena.run_transaction``); bit-identical by contract.
    n_shards:
        Part of the result's identity (see module docstring).
    pool:
        Optional :class:`~repro.parallel.pool.ShardPool`; shards are
        starmapped in order, so rows are invariant to ``--jobs``.
    """
    if n_trials < 0:
        raise InvalidParameterError(f"n_trials must be >= 0, got {n_trials}")
    if n_shards < 1:
        raise InvalidParameterError(f"n_shards must be >= 1, got {n_shards}")
    if engine not in _ENGINES:
        raise InvalidParameterError(
            f"engine must be one of {_ENGINES}, got {engine!r}"
        )
    if isinstance(seed, np.random.Generator):
        raise InvalidParameterError(
            "pass a seed or SeedSequence, not a live Generator: a "
            "generator's future draws cannot be deterministically sharded"
        )
    root = seed if isinstance(seed, np.random.SeedSequence) else seedseq_for(
        seed, *path
    )
    tasks = [
        (program, size, child, engine)
        for size, child in zip(
            split_trials(n_trials, n_shards), _spawn_children(root, n_shards)
        )
    ]
    if pool is None:
        parts = [_trial_shard(*task) for task in tasks]
    else:
        parts = pool.starmap(_trial_shard, tasks)
    return TrialResults.concat(parts)
