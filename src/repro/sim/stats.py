"""Online statistics accumulators.

Experiments run millions of trials; storing every sample would dominate
memory, so aggregation is online: Welford's algorithm for mean/variance
(numerically stable — naive sum-of-squares cancels catastrophically at
the magnitudes the cost model produces), a ratio tracker for
competitive-ratio accounting, and a fixed-bin histogram.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

from repro.errors import InvalidParameterError

__all__ = ["Welford", "RatioTracker", "Histogram"]


class Welford:
    """Streaming mean/variance/min/max (Welford's online algorithm)."""

    __slots__ = ("n", "_mean", "_m2", "min", "max")

    def __init__(self) -> None:
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0
        self.min = math.inf
        self.max = -math.inf

    def add(self, x: float) -> None:
        self.n += 1
        delta = x - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (x - self._mean)
        if x < self.min:
            self.min = x
        if x > self.max:
            self.max = x

    def add_many(self, xs: np.ndarray) -> None:
        """Merge a batch (vectorized via the parallel-merge formula)."""
        xs = np.asarray(xs, dtype=float)
        if xs.size == 0:
            return
        n_b = xs.size
        mean_b = float(xs.mean())
        m2_b = float(((xs - mean_b) ** 2).sum())
        if self.n == 0:
            self.n, self._mean, self._m2 = n_b, mean_b, m2_b
        else:
            n_a = self.n
            delta = mean_b - self._mean
            total = n_a + n_b
            self._mean += delta * n_b / total
            self._m2 += m2_b + delta * delta * n_a * n_b / total
            self.n = total
        self.min = min(self.min, float(xs.min()))
        self.max = max(self.max, float(xs.max()))

    @property
    def mean(self) -> float:
        return self._mean if self.n else math.nan

    @property
    def variance(self) -> float:
        """Sample variance (n - 1 denominator)."""
        return self._m2 / (self.n - 1) if self.n > 1 else math.nan

    @property
    def std(self) -> float:
        v = self.variance
        return math.sqrt(v) if v == v else math.nan

    @property
    def sem(self) -> float:
        """Standard error of the mean."""
        return self.std / math.sqrt(self.n) if self.n > 1 else math.nan

    def merge(self, other: "Welford") -> "Welford":
        """Combine two accumulators (for per-thread partials)."""
        out = Welford()
        for acc in (self, other):
            if acc.n == 0:
                continue
            if out.n == 0:
                out.n, out._mean, out._m2 = acc.n, acc._mean, acc._m2
                out.min, out.max = acc.min, acc.max
            else:
                delta = acc._mean - out._mean
                total = out.n + acc.n
                out._mean += delta * acc.n / total
                out._m2 += acc._m2 + delta * delta * out.n * acc.n / total
                out.n = total
                out.min = min(out.min, acc.min)
                out.max = max(out.max, acc.max)
        return out

    @classmethod
    def merge_all(cls, accs: "Iterable[Welford]") -> "Welford":
        """Left-fold :meth:`merge` over ``accs`` (shard-order combine).

        Used to reassemble per-shard accumulators from a parallel run;
        callers must pass shards in a deterministic order (shard index)
        so the float fold — associative only to rounding — is identical
        no matter how many workers computed the shards.
        """
        out = cls()
        for acc in accs:
            out = out.merge(acc)
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<Welford n={self.n} mean={self.mean:.4g} std={self.std:.4g}>"


class RatioTracker:
    """Accumulate numerator/denominator sums for a global ratio.

    Used for Corollary 1 accounting (sum of online running times over
    sum of offline running times) where averaging per-trial ratios would
    be the wrong statistic.
    """

    __slots__ = ("num", "den", "n")

    def __init__(self) -> None:
        self.num = 0.0
        self.den = 0.0
        self.n = 0

    def add(self, numerator: float, denominator: float) -> None:
        if denominator < 0 or numerator < 0:
            raise InvalidParameterError("ratio components must be >= 0")
        self.num += numerator
        self.den += denominator
        self.n += 1

    @property
    def ratio(self) -> float:
        return self.num / self.den if self.den > 0 else math.nan

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<RatioTracker {self.num:.4g}/{self.den:.4g}={self.ratio:.4g}>"


class Histogram:
    """Fixed-bin histogram over ``[lo, hi)`` with under/overflow bins."""

    def __init__(self, lo: float, hi: float, bins: int) -> None:
        if not (math.isfinite(lo) and math.isfinite(hi)) or hi <= lo:
            raise InvalidParameterError(f"bad histogram range [{lo}, {hi})")
        if bins < 1:
            raise InvalidParameterError(f"need >= 1 bin, got {bins}")
        self.lo = float(lo)
        self.hi = float(hi)
        self.bins = bins
        self.counts = np.zeros(bins, dtype=np.int64)
        self.underflow = 0
        self.overflow = 0

    def add(self, x: float) -> None:
        if x < self.lo:
            self.underflow += 1
        elif x >= self.hi:
            self.overflow += 1
        else:
            idx = int((x - self.lo) / (self.hi - self.lo) * self.bins)
            self.counts[min(idx, self.bins - 1)] += 1

    def add_many(self, xs: np.ndarray) -> None:
        xs = np.asarray(xs, dtype=float)
        self.underflow += int((xs < self.lo).sum())
        self.overflow += int((xs >= self.hi).sum())
        inside = xs[(xs >= self.lo) & (xs < self.hi)]
        if inside.size:
            idx = ((inside - self.lo) / (self.hi - self.lo) * self.bins).astype(int)
            np.add.at(self.counts, np.minimum(idx, self.bins - 1), 1)

    @property
    def total(self) -> int:
        return int(self.counts.sum()) + self.underflow + self.overflow

    def edges(self) -> np.ndarray:
        return np.linspace(self.lo, self.hi, self.bins + 1)

    def density(self) -> np.ndarray:
        """Normalized bin densities (integrates to the in-range mass)."""
        total = self.total
        if total == 0:
            return np.zeros(self.bins)
        width = (self.hi - self.lo) / self.bins
        return self.counts / (total * width)
