"""Discrete-event simulation substrate.

A minimal but complete event-driven kernel used by both the adversarial
throughput arena (Section 6) and the HTM machine simulator (Section 8.2):
a stable binary-heap event queue, a simulator facade with scheduling
helpers, and online statistics accumulators.

:mod:`repro.sim.mc` adds the batched struct-of-arrays Monte-Carlo
engine: :func:`run_trials` executes thousands of independent
transaction trials per NumPy array op, bit-identical to the scalar
``TimedArena`` reference.
"""

from __future__ import annotations

from repro.sim.engine import Event, EventQueue, Simulator
from repro.sim.mc import TrialProgram, TrialResults, run_trials
from repro.sim.stats import Welford, RatioTracker, Histogram

__all__ = [
    "Event",
    "EventQueue",
    "Simulator",
    "Welford",
    "RatioTracker",
    "Histogram",
    "TrialProgram",
    "TrialResults",
    "run_trials",
]
