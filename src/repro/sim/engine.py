"""Event-driven simulation kernel.

Design notes
------------
* **Stable ordering.**  Events at equal timestamps fire in insertion
  order (a monotonically increasing sequence number breaks heap ties).
  Deterministic tie-breaking is what makes every simulation in this
  repository exactly reproducible for a fixed seed.
* **Cancellation by invalidation.**  ``cancel()`` marks the event dead
  in O(1); dead events are skipped on pop (the standard lazy-deletion
  heap idiom — cheaper than heap surgery and amortized O(log n)).
  When dead events outnumber live ones the heap is *compacted* (rebuilt
  from the live events) so long adversarial runs with heavy
  cancellation — grace timers killed by cycle aborts, fault-injected
  spurious aborts — keep memory proportional to live events instead of
  growing without bound.
* **Watchdog.**  ``run(wall_deadline=...)`` checks the wall clock every
  few thousand events and raises
  :class:`~repro.errors.ExperimentTimeoutError` past the deadline — the
  kernel-level half of the experiment runner's timeout story (the
  runner also arms a signal-based watchdog for non-kernel loops).
* **No co-routines.**  Handlers are plain callables; components keep
  explicit state machines.  This is intentional: the HTM controllers
  are specified as state machines (MSI tables), and explicit states are
  what the protocol invariant checks inspect.
"""

from __future__ import annotations

import heapq
import itertools
import math
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.errors import ExperimentTimeoutError, SimulationError

__all__ = ["Event", "EventQueue", "Simulator"]


@dataclass(order=False, slots=True)
class Event:
    """A scheduled callback.

    Events compare by ``(time, seq)``; ``seq`` is assigned by the queue.
    ``__slots__`` keeps the per-event footprint flat — hot runs allocate
    millions of these.
    """

    time: float
    handler: Callable[..., None]
    args: tuple = ()
    label: str = ""
    seq: int = field(default=-1, compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event dead; it will be skipped when popped."""
        self.cancelled = True

    def fire(self) -> None:
        self.handler(*self.args)

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)


class EventQueue:
    """Binary-heap priority queue of :class:`Event` with lazy deletion.

    Dead (cancelled) events are skipped on pop; when they outnumber the
    live events the heap is compacted.  Without compaction a long run
    that cancels faster than it pops — adversarial cycle-abort storms
    cancelling grace timers, fault-injected abort timers — grows the
    heap without bound.
    """

    #: Compaction only kicks in above this many dead events, so small
    #: queues never pay a rebuild.
    COMPACT_MIN_DEAD = 64

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()
        self._live = 0
        self._dead = 0

    def push(self, event: Event) -> Event:
        if not math.isfinite(event.time):
            raise SimulationError(f"event time must be finite, got {event.time}")
        event.seq = next(self._counter)
        heapq.heappush(self._heap, event)
        self._live += 1
        return event

    def pop(self) -> Event | None:
        """Pop the earliest live event, or None when empty."""
        heap, heappop = self._heap, heapq.heappop
        while heap:
            event = heappop(heap)
            if event.cancelled:
                self._dead -= 1
                continue
            self._live -= 1
            return event
        return None

    def peek_time(self) -> float | None:
        """Timestamp of the next live event without popping it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
            self._dead -= 1
        return self._heap[0].time if self._heap else None

    def cancel(self, event: Event) -> None:
        if not event.cancelled:
            event.cancel()
            self._live -= 1
            self._dead += 1
            if self._dead > self.COMPACT_MIN_DEAD and self._dead > self._live:
                self._compact()

    def _compact(self) -> None:
        """Rebuild the heap from live events only.  ``heapify`` is O(n)
        and the (time, seq) ordering is preserved exactly, so firing
        order — and therefore simulation determinism — is unaffected."""
        self._heap = [e for e in self._heap if not e.cancelled]
        heapq.heapify(self._heap)
        self._dead = 0

    def heap_size(self) -> int:
        """Physical heap length including dead entries (observability
        for the compaction tests and memory diagnostics)."""
        return len(self._heap)

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0


class Simulator:
    """Simulation facade: a clock plus an event queue.

    Components schedule work with :meth:`at` / :meth:`after`; the main
    loop (:meth:`run`) advances the clock to each event in order.  Time
    is a float (the HTM layer uses integral cycle counts stored in
    floats; exactness holds below 2**53 cycles, far beyond any run).
    """

    def __init__(self, *, profile: bool = False) -> None:
        self.queue = EventQueue()
        self.now = 0.0
        self.events_fired = 0
        self._running = False
        # optional per-label event counts (cheap profiling: which
        # component dominates the event stream)
        self._profile: dict[str, int] | None = {} if profile else None
        # optional repro.obs.profile.PhaseProfiler: when attached,
        # step() routes handler firing through it (wall-clock handler
        # timing + loop occupancy).  Pure observation — timings never
        # feed the simulation, so determinism is untouched.
        self.profiler = None

    # -- scheduling -------------------------------------------------------
    def at(
        self,
        time: float,
        handler: Callable[..., None],
        *args: Any,
        label: str = "",
    ) -> Event:
        """Schedule ``handler(*args)`` at absolute ``time`` (>= now)."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule into the past: t={time} < now={self.now}"
            )
        return self.queue.push(Event(time, handler, args, label))

    def after(
        self,
        delay: float,
        handler: Callable[..., None],
        *args: Any,
        label: str = "",
    ) -> Event:
        """Schedule ``handler(*args)`` after a relative ``delay`` >= 0."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.at(self.now + delay, handler, *args, label=label)

    def cancel(self, event: Event) -> None:
        self.queue.cancel(event)

    # -- main loop ---------------------------------------------------------
    def step(self) -> bool:
        """Fire the next event; returns False when the queue is empty."""
        event = self.queue.pop()
        if event is None:
            return False
        if event.time < self.now:
            raise SimulationError(
                f"event queue produced a past event: {event.time} < {self.now}"
            )
        self.now = event.time
        self.events_fired += 1
        if self._profile is not None:
            label = event.label or "<unlabeled>"
            self._profile[label] = self._profile.get(label, 0) + 1
        if self.profiler is not None:
            self.profiler.record_fire(event.label or "<unlabeled>", event.fire)
        else:
            event.fire()
        return True

    #: Events between wall-clock deadline checks (cheap enough to leave
    #: on; a check is one ``time.monotonic`` call per batch).
    WATCHDOG_EVERY = 4096

    def run(
        self,
        until: float = math.inf,
        *,
        max_events: int | None = None,
        stop_when: Callable[[], bool] | None = None,
        wall_deadline: float | None = None,
    ) -> float:
        """Run until the queue drains, ``until`` is reached, ``stop_when``
        returns True, or ``max_events`` have fired.  Returns the final
        clock value.

        ``until`` is exclusive: an event at exactly ``until`` does not
        fire, and the clock is advanced to ``until`` when the horizon is
        the binding stop condition.

        ``wall_deadline`` is an absolute ``time.monotonic()`` instant;
        every :data:`WATCHDOG_EVERY` events the clock is checked and
        :class:`~repro.errors.ExperimentTimeoutError` raised past it.
        The simulation is left in a consistent (resumable) state — the
        deadline fires between events, never inside a handler.
        """
        if self._running:
            raise SimulationError("run() is not re-entrant")
        self._running = True
        fired = 0
        if self.profiler is not None:
            self.profiler.loop_enter()
        # hoisted attribute lookups for the hot loop (bound methods are
        # invariant across iterations; semantics identical)
        peek_time = self.queue.peek_time
        step = self.step
        monotonic = time.monotonic
        watchdog_every = self.WATCHDOG_EVERY
        try:
            while True:
                if stop_when is not None and stop_when():
                    break
                if max_events is not None and fired >= max_events:
                    break
                if (
                    wall_deadline is not None
                    and fired % watchdog_every == 0
                    and monotonic() >= wall_deadline  # simlint: disable=DET001 -- watchdog wall-clock budget
                ):
                    raise ExperimentTimeoutError(
                        f"simulation exceeded its wall-clock budget at "
                        f"t={self.now:.0f} after {self.events_fired} events"
                    )
                nxt = peek_time()
                if nxt is None:
                    break
                if nxt >= until:
                    self.now = max(self.now, min(until, nxt))
                    break
                step()
                fired += 1
        finally:
            self._running = False
            if self.profiler is not None:
                self.profiler.loop_exit()
        return self.now

    def event_profile(self) -> dict[str, int]:
        """Fired-event counts by label (empty unless constructed with
        ``profile=True`` — counting costs a dict update per event)."""
        return dict(self._profile) if self._profile is not None else {}
