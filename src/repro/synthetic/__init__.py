"""Synthetic policy testbed (Section 8.1)."""

from __future__ import annotations

from repro.synthetic.harness import (
    SyntheticHarness,
    SyntheticResult,
    default_policy_suite,
)

__all__ = ["SyntheticHarness", "SyntheticResult", "default_policy_suite"]
