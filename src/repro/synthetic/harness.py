"""The Section 8.1 synthetic testbed.

Per trial (quoting the paper's procedure): draw the transaction length
``r`` from a given length distribution; pick the interrupt point ``i``
uniformly at random from that length (so the unknown remaining time is
``D = r - i``); let each policy pick its delay ``j``; score the conflict
cost under the policy's cost model.  Averages over many trials populate
Figure 2's bars.

All trials for a policy are evaluated in one vectorized pass (one
``sample`` call on the distribution, one ``sample_many`` on the policy,
one ``cost_vec`` on the model).

Two harness details the paper leaves implicit, both configurable:

* ``mu_source`` — the mean fed to the constrained policies.  The figure
  captions quote the *length* mean (µ = 500), so ``"length"`` is the
  default; ``"remaining"`` uses the true mean of ``D`` (= µ/2 under the
  uniform interrupt), the quantity the theorems actually constrain.
* ``interrupt`` — ``"uniform"`` implements the paper's procedure;
  ``"direct"`` feeds the drawn value in as ``D`` itself, which is how
  the Figure 2c worst-case adversary chooses the remaining time
  directly (Theorem 4's lower-bound argument).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.model import ConflictKind, ConflictModel
from repro.core.oracle import ClairvoyantPolicy
from repro.core.policy import DelayPolicy
from repro.core.requestor_aborts import optimal_requestor_aborts
from repro.core.requestor_wins import optimal_requestor_wins
from repro.distributions.base import LengthDistribution
from repro.errors import InvalidParameterError
from repro.obs.metrics import get_registry
from repro.obs.tracebus import NO_SIM_TIME, get_bus
from repro.rngutil import DEFAULT_SEED, ensure_rng
from repro.sim.stats import Welford

__all__ = ["SyntheticHarness", "SyntheticResult", "default_policy_suite", "PolicyEntry"]


def _shard_worker(
    harness: "SyntheticHarness",
    dist: LengthDistribution,
    trials: int,
    seedseq: "np.random.SeedSequence",
    batch: int,
) -> dict[str, Welford]:
    """One trial shard (module-level so process pools can pickle it).

    Takes its stream as an explicit ``SeedSequence`` argument — never
    constructs RNG state of its own (simlint DET004): shard streams
    must be spawned by the caller so the shard tree is a pure function
    of ``(seed, n_shards)``, not of which worker ran what.
    """
    return harness._accumulate(dist, trials, np.random.default_rng(seedseq), batch)


@dataclass(frozen=True)
class PolicyEntry:
    """A named policy bound to the conflict model it is scored under."""

    label: str
    policy: DelayPolicy
    model: ConflictModel


def default_policy_suite(
    B: float, mu: float, k: int = 2
) -> list[PolicyEntry]:
    """The six strategies of Figure 2, by their paper abbreviations.

    RRW(mu) / RRA(mu) — randomized with the mean constraint;
    RRW / RRA — randomized unconstrained; DET — optimal deterministic
    requestor-wins; OPT — offline optimum (scored as ``min((k-1)D, B)``).
    """
    rw = ConflictModel(ConflictKind.REQUESTOR_WINS, B, k)
    ra = ConflictModel(ConflictKind.REQUESTOR_ABORTS, B, k)
    entries = [
        PolicyEntry("RRW(mu)", optimal_requestor_wins(B, k, mu), rw),
        PolicyEntry("RRA(mu)", optimal_requestor_aborts(B, k, mu), ra),
        PolicyEntry("RRW", optimal_requestor_wins(B, k), rw),
        PolicyEntry("RRA", optimal_requestor_aborts(B, k), ra),
        PolicyEntry("DET", optimal_requestor_wins(B, k, deterministic=True), rw),
        PolicyEntry("OPT", ClairvoyantPolicy(rw), rw),
    ]
    return entries


@dataclass
class SyntheticResult:
    """Average conflict costs per policy for one (distribution, B, µ)."""

    distribution: str
    B: float
    mu: float
    trials: int
    stats: dict[str, Welford] = field(default_factory=dict)

    def mean_cost(self, label: str) -> float:
        return self.stats[label].mean

    def normalized(self, baseline: str = "OPT") -> dict[str, float]:
        """Mean costs divided by the baseline's mean cost."""
        base = self.mean_cost(baseline)
        return {label: acc.mean / base for label, acc in self.stats.items()}

    def as_rows(self) -> list[tuple[str, float, float]]:
        """``(label, mean, sem)`` rows sorted by mean cost."""
        rows = [
            (label, acc.mean, acc.sem) for label, acc in self.stats.items()
        ]
        rows.sort(key=lambda row: row[1])
        return rows


class SyntheticHarness:
    """Vectorized trial loop over a policy suite."""

    def __init__(
        self,
        B: float,
        mu: float,
        *,
        k: int = 2,
        policies: list[PolicyEntry] | None = None,
        mu_source: str = "length",
        interrupt: str = "uniform",
    ) -> None:
        if B <= 0 or mu <= 0:
            raise InvalidParameterError(f"need B > 0 and mu > 0, got {B}, {mu}")
        if mu_source not in ("length", "remaining"):
            raise InvalidParameterError(f"unknown mu_source {mu_source!r}")
        if interrupt not in ("uniform", "direct"):
            raise InvalidParameterError(f"unknown interrupt mode {interrupt!r}")
        self.B = float(B)
        self.mu = float(mu)
        self.k = k
        self.mu_source = mu_source
        self.interrupt = interrupt
        effective_mu = self.mu if mu_source == "length" else self.mu / 2.0
        self.policies = (
            policies
            if policies is not None
            else default_policy_suite(B, effective_mu, k)
        )

    # ------------------------------------------------------------------
    def draw_remaining(
        self, dist: LengthDistribution, n: int, rng: np.random.Generator
    ) -> np.ndarray:
        """Draw ``n`` remaining times per the configured interrupt mode."""
        lengths = dist.sample(n, rng)
        if self.interrupt == "direct":
            return lengths
        # interrupt point i ~ U[0, r); remaining D = r - i = r * (1 - u)
        # which is r * u' with u' uniform in (0, 1].
        return lengths * (1.0 - rng.random(n))

    def run(
        self,
        dist: LengthDistribution,
        trials: int,
        rng: np.random.Generator | int | np.random.SeedSequence | None = None,
        *,
        batch: int = 100_000,
        n_shards: int = 1,
        pool=None,
    ) -> SyntheticResult:
        """Score every policy on ``trials`` conflicts drawn from ``dist``.

        All policies see the *same* remaining-time draws (common random
        numbers — variance reduction for the cross-policy comparison).

        ``n_shards > 1`` splits the trials into independently seeded
        shards (``SeedSequence`` spawning; CRN still holds within each
        shard) and combines per-shard accumulators with
        :meth:`Welford.merge_all` **in shard order** — so the result is
        bit-identical for a fixed ``(rng, n_shards)`` whether the
        shards run serially or on ``pool`` (an object with ``starmap``,
        e.g. :class:`repro.parallel.ProcessPool`).  Sharded runs need a
        seed or ``SeedSequence``, not a live ``Generator``: an opaque
        generator cannot be split into independent streams
        deterministically.
        """
        if trials < 1:
            raise InvalidParameterError(f"trials must be >= 1, got {trials}")
        if n_shards < 1:
            raise InvalidParameterError(
                f"n_shards must be >= 1, got {n_shards}"
            )
        if n_shards == 1:
            stats = self._accumulate(dist, trials, ensure_rng(rng), batch)
            return self._observed(
                SyntheticResult(
                    distribution=dist.name,
                    B=self.B,
                    mu=self.mu,
                    trials=trials,
                    stats=stats,
                )
            )
        if isinstance(rng, np.random.Generator):
            raise InvalidParameterError(
                "sharded runs (n_shards > 1) need an int seed or "
                "SeedSequence, not a Generator: a live generator cannot "
                "be split into deterministic independent streams"
            )
        root = (
            rng
            if isinstance(rng, np.random.SeedSequence)
            else np.random.SeedSequence(
                DEFAULT_SEED if rng is None else int(rng)
            )
        )
        children = root.spawn(n_shards)
        base, extra = divmod(trials, n_shards)
        tasks = [
            (self, dist, base + (1 if i < extra else 0), children[i], batch)
            for i in range(n_shards)
            if base + (1 if i < extra else 0) > 0
        ]
        if pool is None:
            shard_stats = [_shard_worker(*task) for task in tasks]
        else:
            shard_stats = pool.starmap(_shard_worker, tasks)
        labels = [entry.label for entry in self.policies]
        return self._observed(
            SyntheticResult(
                distribution=dist.name,
                B=self.B,
                mu=self.mu,
                trials=trials,
                stats={
                    label: Welford.merge_all(s[label] for s in shard_stats)
                    for label in labels
                },
            )
        )

    def _observed(self, result: SyntheticResult) -> SyntheticResult:
        """Publish one ``synthetic_run`` record per finished run.

        Emitted once in the *calling* process after any shard merge, so
        the counter and event stream are invariant to sharding and pool
        choice.  No-ops when observability is off.
        """
        registry, bus = get_registry(), get_bus()
        if registry.enabled:
            registry.counter("synthetic_runs").inc()
            registry.counter("synthetic_trials").inc(result.trials)
        if bus.enabled:
            bus.emit(
                NO_SIM_TIME,
                "synthetic_run",
                -1,
                distribution=result.distribution,
                trials=result.trials,
                B=result.B,
                mu=result.mu,
                means={
                    label: acc.mean for label, acc in result.stats.items()
                },
            )
        return result

    def _accumulate(
        self,
        dist: LengthDistribution,
        trials: int,
        gen: np.random.Generator,
        batch: int,
    ) -> dict[str, Welford]:
        """The vectorized trial loop for one stream (= one shard)."""
        stats = {entry.label: Welford() for entry in self.policies}
        done = 0
        while done < trials:
            n = min(batch, trials - done)
            remaining = self.draw_remaining(dist, n, gen)
            for entry in self.policies:
                costs = self._score(entry, remaining, gen)
                stats[entry.label].add_many(costs)
            done += n
        return stats

    def _score(
        self,
        entry: PolicyEntry,
        remaining: np.ndarray,
        rng: np.random.Generator,
    ) -> np.ndarray:
        if isinstance(entry.policy, ClairvoyantPolicy):
            return entry.model.opt_vec(remaining)
        delays = entry.policy.sample_many(remaining.size, rng)
        return entry.model.cost_vec(delays, remaining)

    # ------------------------------------------------------------------
    def sweep(
        self,
        dists: list[LengthDistribution],
        trials: int,
        rng: np.random.Generator | int | None = None,
    ) -> list[SyntheticResult]:
        """One :meth:`run` per distribution (the Figure 2 x-axis)."""
        gen = ensure_rng(rng)
        return [self.run(dist, trials, gen) for dist in dists]
