"""Legacy shim so ``pip install -e .`` works offline (no `wheel` package
is available in this environment, so the PEP-517 editable path fails
with `invalid command 'bdist_wheel'`; the legacy path does not need it).
All real metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
